"""Tests for the DataNode read/write/migration paths."""

import pytest

from repro.dfs import Block, DataNode, DataNodeError
from repro.sim import Environment
from repro.storage import GB, MB, TransferDevice


def make_node(env, cache_reads=False):
    disk = TransferDevice(env, "hdd-test", bandwidth=100 * MB)
    ram = TransferDevice(env, "ram-test", bandwidth=1000 * MB)
    return DataNode(
        env, "n0", disk=disk, ram=ram, cache_capacity=1 * GB, cache_reads=cache_reads
    )


def block(nbytes=64 * MB, index=0):
    return Block(f"/f#blk{index}", "/f", index, nbytes)


class TestReadPath:
    def test_cold_read_comes_from_disk(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)
        results = {}

        def proc(env):
            handle = node.read_block(blk)
            yield handle.done
            results["source"] = handle.source
            results["time"] = env.now

        env.process(proc(env))
        env.run()
        assert results["source"] == "hdd"
        assert results["time"] == pytest.approx(0.64)

    def test_cached_read_comes_from_ram(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)
        results = {}

        def proc(env):
            yield node.migrate_block_to_memory(blk)
            handle = node.read_block(blk)
            yield handle.done
            results["source"] = handle.source

        env.process(proc(env))
        env.run()
        assert results["source"] == "ram"

    def test_reading_missing_block_raises(self):
        env = Environment()
        node = make_node(env)
        with pytest.raises(DataNodeError):
            node.read_block(block())

    def test_read_hook_invoked_with_job_id(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)
        calls = []
        node.on_block_read = lambda b, job_id: calls.append((b.block_id, job_id))

        def proc(env):
            handle = node.read_block(blk, job_id="job-7")
            yield handle.done

        env.process(proc(env))
        env.run()
        assert calls == [(blk.block_id, "job-7")]

    def test_cache_reads_flag_populates_cache(self):
        env = Environment()
        node = make_node(env, cache_reads=True)
        blk = block()
        node.store_block(blk)

        def proc(env):
            yield node.read_block(blk).done
            handle = node.read_block(blk)
            yield handle.done
            assert handle.source == "ram"

        env.process(proc(env))
        env.run()

    def test_ssd_disk_reports_ssd_source(self):
        env = Environment()
        disk = TransferDevice(env, "ssd-n0", bandwidth=500 * MB)
        node = DataNode(env, "n0", disk=disk)
        blk = block()
        node.store_block(blk)

        def proc(env):
            handle = node.read_block(blk)
            yield handle.done
            assert handle.source == "ssd"

        env.process(proc(env))
        env.run()


class TestMigration:
    def test_migration_pins_block(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)

        def proc(env):
            yield node.migrate_block_to_memory(blk)

        env.process(proc(env))
        env.run()
        assert node.block_in_memory(blk.block_id)
        assert node.cache.is_pinned(blk.block_id)
        # 64MB at 100MB/s.
        assert env.now == pytest.approx(0.64)

    def test_migrating_already_cached_block_is_instant(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)
        times = {}

        def proc(env):
            yield node.migrate_block_to_memory(blk)
            times["first"] = env.now
            yield node.migrate_block_to_memory(blk)
            times["second"] = env.now

        env.process(proc(env))
        env.run()
        assert times["second"] == times["first"]

    def test_migrating_missing_block_raises(self):
        env = Environment()
        node = make_node(env)
        with pytest.raises(DataNodeError):
            node.migrate_block_to_memory(block())

    def test_evict_block_from_memory(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)

        def proc(env):
            yield node.migrate_block_to_memory(blk)

        env.process(proc(env))
        env.run()
        assert node.evict_block_from_memory(blk.block_id)
        assert not node.block_in_memory(blk.block_id)
        assert not node.evict_block_from_memory(blk.block_id)


class TestWritePath:
    def test_write_block_is_absorbed_instantly(self):
        env = Environment()
        node = make_node(env)
        blk = block()

        def proc(env):
            start = env.now
            yield node.write_block(blk)
            assert env.now == start  # absorbed by cache

        env.process(proc(env))
        env.run()
        assert node.has_block(blk.block_id)

    def test_write_generates_background_flush(self):
        env = Environment()
        node = make_node(env)
        blk = block()

        def proc(env):
            yield node.write_block(blk)

        env.process(proc(env))
        env.run()
        assert node.disk.bytes_moved == pytest.approx(64 * MB)


class TestFailure:
    def test_fail_drops_memory_but_not_disk(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)

        def proc(env):
            yield node.migrate_block_to_memory(blk)

        env.process(proc(env))
        env.run()
        node.fail()
        assert not node.alive
        assert node.cache.used_bytes == 0
        node.restart()
        assert node.has_block(blk.block_id)
        assert not node.block_in_memory(blk.block_id)

    def test_operations_on_dead_node_raise(self):
        env = Environment()
        node = make_node(env)
        blk = block()
        node.store_block(blk)
        node.fail()
        with pytest.raises(DataNodeError):
            node.read_block(blk)
        with pytest.raises(DataNodeError):
            node.migrate_block_to_memory(blk)
        with pytest.raises(DataNodeError):
            node.write_block(block(index=1))
        assert not node.has_block(blk.block_id)  # dead nodes serve nothing
