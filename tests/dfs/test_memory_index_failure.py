"""Memory-locality index stays consistent across node failures.

Regression for the stale-entry bug: a node that crashes with an
in-flight or queued migration must leave no entry in the NameNode's
push-maintained index — including when the crash lands *during* the
migration's disk read, whose completion callback used to insert into
the already-flushed cache.
"""

from repro.faults import InvariantChecker
from repro.storage import MB
from tests.fixtures import make_ignem_cluster


def make_cluster(num_nodes=2, replication=2):
    return make_ignem_cluster(num_nodes=num_nodes, replication=replication)


def index_nodes(cluster):
    nodes = set()
    for holders in cluster.namenode.locality_index.blocks().values():
        nodes |= set(holders)
    return nodes


class TestIndexAfterFailure:
    def test_crash_mid_migration_leaves_no_stale_entry(self):
        cluster = make_cluster()
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 256 * MB)

        def chaos(env):
            cluster.ignem_master.request_migration(["/f"], "j1")
            # Strike while the first block's disk read is in flight and
            # the second is still queued.
            yield env.timeout(0.05)
            victims = [
                name
                for name, slave in cluster.ignem_slaves.items()
                if slave.reference_count() > 0
            ]
            assert victims
            cluster.fail_node(victims[0])

        cluster.env.process(chaos(cluster.env), name="chaos")
        cluster.run()

        dead = [n for n, d in cluster.datanodes.items() if not d.alive]
        assert len(dead) == 1
        assert dead[0] not in index_nodes(cluster)
        assert InvariantChecker(cluster).check_memory_index() == []

    def test_crash_after_migration_purges_entries(self):
        cluster = make_cluster()
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()

        block = cluster.namenode.file_blocks("/f")[0]
        holders = set(cluster.namenode.memory_nodes(block.block_id))
        assert holders
        victim = sorted(holders)[0]
        cluster.fail_node(victim)

        assert victim not in cluster.namenode.memory_nodes(block.block_id)
        assert InvariantChecker(cluster).check_memory_index() == []

    def test_restarted_node_reindexes_fresh_migrations(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)

        def chaos(env):
            cluster.ignem_master.request_migration(["/f"], "j1")
            yield env.timeout(0.05)
            cluster.fail_node("node0")
            yield env.timeout(1.0)
            cluster.restart_node("node0")
            yield env.timeout(0.1)
            cluster.ignem_master.request_migration(["/f"], "j1")

        cluster.env.process(chaos(cluster.env), name="chaos")
        cluster.run()

        block = cluster.namenode.file_blocks("/f")[0]
        assert cluster.namenode.memory_nodes(block.block_id) == frozenset(
            {"node0"}
        )
        assert InvariantChecker(cluster).check_memory_index() == []
