"""Tests for the 3-tier (mem/ssd/hdd) DataNode migration path."""

import pytest

from repro.dfs import Block, DataNode, DataNodeError
from repro.sim import Environment
from repro.storage import (
    GB,
    HDD_TIER,
    MB,
    MEM_TIER,
    SSD_TIER,
    build_tier_set,
    tier_preset,
)


def make_three_tier_node(env, name="n0"):
    tiers = build_tier_set(
        env,
        tier_preset("mem-ssd-hdd"),
        name,
        capacities={"mem": 1 * GB, "ssd": 4 * GB, "hdd": 64 * GB},
    )
    return DataNode(env, name, tiers=tiers, disk_capacity=64 * GB)


def block(nbytes=64 * MB, index=0):
    return Block(f"/f#blk{index}", "/f", index, nbytes)


class TestTierSetShape:
    def test_preset_orders_top_down(self):
        env = Environment()
        tiers = build_tier_set(env, tier_preset("mem-ssd-hdd"), "n0")
        assert [t.spec.name for t in tiers] == ["mem", "ssd", "hdd"]
        assert tiers.top.spec is MEM_TIER
        assert tiers.bottom.spec is HDD_TIER
        assert [t.spec.name for t in tiers.upper] == ["mem", "ssd"]
        assert tiers.get("ssd").spec is SSD_TIER

    def test_device_names_follow_prefixes(self):
        env = Environment()
        tiers = build_tier_set(env, tier_preset("mem-ssd-hdd"), "n7")
        assert tiers.top.device.name == "ram-n7"
        assert tiers.get("ssd").device.name == "ssd-n7"
        assert tiers.bottom.device.name == "hdd-n7"


class TestThreeTierMigration:
    def test_migrate_to_middle_tier_then_top_keeps_one_upper_copy(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)
        seen = {}

        def proc(env):
            assert node.block_tier(blk.block_id) == "hdd"
            yield node.migrate_block_to_tier(blk, "ssd")
            seen["after_ssd"] = node.block_tier(blk.block_id)
            yield node.migrate_block_to_tier(blk, "mem")
            seen["after_mem"] = node.block_tier(blk.block_id)
            seen["still_in_ssd"] = node.tiers.get("ssd").cache.contains(
                blk.block_id
            )

        env.process(proc(env))
        env.run()
        assert seen["after_ssd"] == "ssd"
        assert seen["after_mem"] == "mem"
        # Promotion retracts the copy from the tier it left: at most one
        # upper-tier copy per node.
        assert seen["still_in_ssd"] is False

    def test_read_served_from_highest_resident_tier(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)
        sources = []

        def proc(env):
            handle = node.read_block(blk)
            yield handle.done
            sources.append(handle.source)
            yield node.migrate_block_to_tier(blk, "ssd")
            handle = node.read_block(blk)
            yield handle.done
            sources.append(handle.source)
            yield node.migrate_block_to_tier(blk, "mem")
            handle = node.read_block(blk)
            yield handle.done
            sources.append(handle.source)

        env.process(proc(env))
        env.run()
        assert sources == ["hdd", "ssd", "ram"]

    def test_migration_source_is_highest_tier_below_destination(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)

        def proc(env):
            assert node.migration_source(blk.block_id, "mem") is node.disk
            yield node.migrate_block_to_tier(blk, "ssd")
            assert (
                node.migration_source(blk.block_id, "mem")
                is node.tiers.get("ssd").device
            )
            assert node.migration_source(blk.block_id, "ssd") is node.disk

        env.process(proc(env))
        env.run()

    def test_evict_from_middle_tier(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)

        def proc(env):
            yield node.migrate_block_to_tier(blk, "ssd")
            assert node.evict_block_from_tier(blk.block_id, "ssd") is True
            assert node.block_tier(blk.block_id) == "hdd"
            assert node.evict_block_from_tier(blk.block_id, "ssd") is False

        env.process(proc(env))
        env.run()

    def test_unknown_tier_raises(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)
        with pytest.raises(DataNodeError):
            node.migrate_block_to_tier(blk, "tape")
        with pytest.raises(DataNodeError):
            node.evict_block_from_tier(blk.block_id, "hdd")


class TestResidencyPublication:
    def test_listener_sees_tier_tagged_deltas(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)
        deltas = []
        node.attach_residency_listener(
            lambda name, tier, key, resident: deltas.append(
                (name, tier, key, resident)
            )
        )

        def proc(env):
            yield node.migrate_block_to_tier(blk, "ssd")
            yield node.migrate_block_to_tier(blk, "mem")

        env.process(proc(env))
        env.run()
        # Promotion inserts into the destination first, then retracts
        # the copy from the tier it left.
        assert deltas == [
            ("n0", "ssd", blk.block_id, True),
            ("n0", "mem", blk.block_id, True),
            ("n0", "ssd", blk.block_id, False),
        ]

    def test_fail_drops_every_upper_tier(self):
        env = Environment()
        node = make_three_tier_node(env)
        blk = block()
        node.store_block(blk)
        deltas = []
        node.attach_residency_listener(
            lambda name, tier, key, resident: deltas.append(
                (tier, key, resident)
            )
        )

        def proc(env):
            yield node.migrate_block_to_tier(blk, "ssd")

        env.process(proc(env))
        env.run()
        node.fail()
        assert ("ssd", blk.block_id, False) in deltas
        node.restart()
        assert node.block_tier(blk.block_id) == "hdd"
