"""Tests for disk capacity accounting and capacity-aware placement."""

import pytest

from repro import build_paper_testbed
from repro.dfs import Block, DataNode, DataNodeError, NameNodeError
from repro.sim import Environment
from repro.storage import GB, MB


class TestDataNodeCapacity:
    def test_store_accounts_bytes(self):
        env = Environment()
        node = DataNode(env, "n", disk_capacity=1 * GB)
        node.store_block(Block("b0", "/f", 0, 300 * MB))
        assert node.disk_used == 300 * MB
        assert node.has_capacity(700 * MB)
        assert not node.has_capacity(800 * MB)

    def test_store_beyond_capacity_rejected(self):
        env = Environment()
        node = DataNode(env, "n", disk_capacity=100 * MB)
        node.store_block(Block("b0", "/f", 0, 64 * MB))
        with pytest.raises(DataNodeError, match="disk space"):
            node.store_block(Block("b1", "/f", 1, 64 * MB))

    def test_duplicate_store_not_double_counted(self):
        env = Environment()
        node = DataNode(env, "n", disk_capacity=1 * GB)
        block = Block("b0", "/f", 0, 100 * MB)
        node.store_block(block)
        node.store_block(block)
        assert node.disk_used == 100 * MB

    def test_drop_releases_bytes(self):
        env = Environment()
        node = DataNode(env, "n", disk_capacity=1 * GB)
        node.store_block(Block("b0", "/f", 0, 100 * MB))
        node.drop_block("b0")
        assert node.disk_used == 0

    def test_write_block_accounts_and_rejects(self):
        env = Environment()
        node = DataNode(env, "n", disk_capacity=100 * MB)

        def proc(env):
            yield node.write_block(Block("b0", "/f", 0, 64 * MB))
            with pytest.raises(DataNodeError, match="disk space"):
                node.write_block(Block("b1", "/f", 1, 64 * MB))

        env.process(proc(env))
        env.run()
        assert node.disk_used == 64 * MB

    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            DataNode(env, "n", disk_capacity=0)


class TestCapacityAwarePlacement:
    def test_placement_avoids_full_nodes(self):
        cluster = build_paper_testbed(
            num_nodes=3, replication=1, disk_capacity=200 * MB
        )
        # Fill node0 almost completely via direct placement.
        full = cluster.datanodes["node0"]
        full.store_block(Block("filler", "/x", 0, 180 * MB))
        # New 64MB blocks cannot land on node0 anymore.
        metadata = cluster.client.create_file("/f", 256 * MB)
        for block in metadata.blocks:
            assert "node0" not in cluster.namenode.get_block_locations(
                block.block_id
            )

    def test_cluster_out_of_space_raises_and_rolls_back(self):
        cluster = build_paper_testbed(
            num_nodes=2, replication=1, disk_capacity=100 * MB
        )
        with pytest.raises(NameNodeError, match="capacity"):
            cluster.client.create_file("/huge", 10 * GB)
        assert not cluster.namenode.exists("/huge")

    def test_deleting_files_frees_space_for_new_ones(self):
        cluster = build_paper_testbed(
            num_nodes=2, replication=1, disk_capacity=200 * MB
        )
        cluster.client.create_file("/a", 300 * MB)
        with pytest.raises(NameNodeError):
            cluster.client.create_file("/b", 300 * MB)
        cluster.client.delete("/a")
        cluster.client.create_file("/b", 300 * MB)
        assert cluster.namenode.exists("/b")

    def test_default_capacity_matches_paper_testbed(self):
        cluster = build_paper_testbed(num_nodes=1)
        assert cluster.datanodes["node0"].disk_capacity == 1024 * GB
