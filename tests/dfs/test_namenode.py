"""Tests for the NameNode: namespace, placement, liveness."""

import pytest

from repro.dfs import DataNode, NameNode, NameNodeError
from repro.sim import Environment, RandomSource
from repro.storage import MB


class TestNamespace:
    def test_create_and_get_file(self, namenode):
        metadata = namenode.create_file("/data/a", 100 * MB)
        assert namenode.exists("/data/a")
        assert namenode.get_file("/data/a") is metadata
        assert metadata.nbytes == 100 * MB

    def test_create_duplicate_rejected(self, namenode):
        namenode.create_file("/data/a", 10 * MB)
        with pytest.raises(NameNodeError):
            namenode.create_file("/data/a", 10 * MB)

    def test_get_missing_file_raises(self, namenode):
        with pytest.raises(NameNodeError):
            namenode.get_file("/nope")

    def test_delete_file_removes_blocks_everywhere(self, namenode):
        metadata = namenode.create_file("/data/a", 100 * MB)
        block_id = metadata.blocks[0].block_id
        nodes = namenode.get_block_locations(block_id)
        namenode.delete_file("/data/a")
        assert not namenode.exists("/data/a")
        for node in nodes:
            assert not namenode.datanode(node).has_block(block_id)
        with pytest.raises(NameNodeError):
            namenode.get_block_locations(block_id)

    def test_delete_missing_raises(self, namenode):
        with pytest.raises(NameNodeError):
            namenode.delete_file("/nope")

    def test_list_files_sorted(self, namenode):
        namenode.create_file("/b", 1 * MB)
        namenode.create_file("/a", 1 * MB)
        assert namenode.list_files() == ["/a", "/b"]

    def test_total_bytes(self, namenode):
        namenode.create_file("/a", 10 * MB)
        namenode.create_file("/b", 20 * MB)
        assert namenode.total_bytes(["/a", "/b"]) == 30 * MB


class TestPlacement:
    def test_replication_factor_respected(self, namenode):
        metadata = namenode.create_file("/data/a", 64 * MB)
        locations = namenode.get_block_locations(metadata.blocks[0].block_id)
        assert len(locations) == 2  # fixture replication=2
        assert len(set(locations)) == 2

    def test_replication_capped_by_cluster_size(self, namenode):
        metadata = namenode.create_file("/data/a", 64 * MB, replication=10)
        locations = namenode.get_block_locations(metadata.blocks[0].block_id)
        assert len(locations) == 4  # only 4 nodes exist

    def test_preferred_node_gets_first_replica(self, namenode):
        metadata = namenode.create_file(
            "/data/a", 64 * MB, preferred_node="node2"
        )
        locations = namenode.get_block_locations(metadata.blocks[0].block_id)
        assert "node2" in locations

    def test_blocks_materialized_on_datanodes(self, namenode):
        metadata = namenode.create_file("/data/a", 128 * MB)
        for block in metadata.blocks:
            for node in namenode.get_block_locations(block.block_id):
                assert namenode.datanode(node).has_block(block.block_id)

    def test_materialize_false_leaves_disks_empty(self, namenode):
        metadata = namenode.create_file("/x", 64 * MB, materialize=False)
        block_id = metadata.blocks[0].block_id
        for node in namenode.get_block_locations(block_id):
            assert not namenode.datanode(node).has_block(block_id)

    def test_placement_deterministic_with_seed(self):
        def build(seed):
            env = Environment()
            nn = NameNode(rng=RandomSource(seed), replication=2)
            for index in range(5):
                nn.register_datanode(DataNode(env, f"n{index}"))
            metadata = nn.create_file("/f", 256 * MB)
            return [
                tuple(nn.get_block_locations(b.block_id)) for b in metadata.blocks
            ]

        assert build(3) == build(3)
        # Different seeds should (for 4 blocks over 5 nodes) give different
        # placements; equality would indicate ignored seeds.
        assert build(3) != build(4)


class TestLiveness:
    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            NameNode(replication=0)

    def test_duplicate_datanode_rejected(self, env, namenode):
        with pytest.raises(NameNodeError):
            namenode.register_datanode(DataNode(env, "node0"))

    def test_unknown_datanode_raises(self, namenode):
        with pytest.raises(NameNodeError):
            namenode.datanode("ghost")

    def test_dead_node_filtered_from_locations(self, namenode):
        metadata = namenode.create_file("/data/a", 64 * MB, replication=4)
        block_id = metadata.blocks[0].block_id
        before = namenode.get_block_locations(block_id)
        namenode.datanode(before[0]).fail()
        after = namenode.get_block_locations(block_id)
        assert before[0] not in after
        assert len(after) == len(before) - 1

    def test_remove_datanode_scrubs_locations(self, namenode):
        metadata = namenode.create_file("/data/a", 64 * MB, replication=4)
        block_id = metadata.blocks[0].block_id
        victim = namenode.get_block_locations(block_id)[0]
        namenode.remove_datanode(victim)
        assert victim not in namenode.get_block_locations(block_id)
        with pytest.raises(NameNodeError):
            namenode.datanode(victim)

    def test_create_with_no_live_nodes_raises(self, namenode):
        for datanode in namenode.datanodes():
            datanode.fail()
        with pytest.raises(NameNodeError):
            namenode.create_file("/f", 1 * MB)

    def test_placement_avoids_dead_nodes(self, namenode):
        namenode.datanode("node0").fail()
        metadata = namenode.create_file("/f", 640 * MB, replication=3)
        for block in metadata.blocks:
            assert "node0" not in namenode.get_block_locations(block.block_id)
