"""Tests for the re-replication monitor."""

import pytest

from repro.dfs import RepairConfig, ReplicationMonitor
from repro.storage import MB
from tests.fixtures import make_dfs_cluster as make_cluster


class TestUnderReplicationDetection:
    def test_healthy_cluster_has_no_under_replicated_blocks(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        assert cluster.replication_monitor.under_replicated_blocks() == []

    def test_failure_exposes_under_replicated_blocks(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.datanodes[victim].fail()
        under = cluster.replication_monitor.under_replicated_blocks()
        assert under  # at least the first block lost a replica

    def test_target_capped_by_live_nodes(self):
        cluster = make_cluster(num_nodes=2, replication=2)
        cluster.client.create_file("/f", 64 * MB)
        cluster.datanodes["node1"].fail()
        # Only one live node: target replication becomes 1, so a block
        # with one live replica is NOT under-replicated.
        assert cluster.replication_monitor.under_replicated_blocks() == []


class TestRestoration:
    def test_fail_node_restores_replication_factor(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 256 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        victim = cluster.namenode.get_block_locations(block.block_id)[0]
        cluster.fail_node(victim)
        cluster.run()
        monitor = cluster.replication_monitor
        assert monitor.copies_completed > 0
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 2
            assert victim not in live

    def test_new_replicas_are_readable(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        victim = cluster.namenode.get_block_locations(block.block_id)[0]
        cluster.fail_node(victim)
        cluster.run()
        new_home = [
            n
            for n in cluster.namenode.get_block_locations(block.block_id)
        ][-1]
        assert cluster.namenode.datanode(new_home).has_block(block.block_id)

    def test_copies_move_real_bytes(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        before = {
            name: cluster.network.nic(name).bytes_moved
            for name in cluster.node_names()
        }
        cluster.fail_node(victim)
        cluster.run()
        moved = sum(
            cluster.network.nic(name).bytes_moved - before[name]
            for name in cluster.node_names()
        )
        assert moved > 0

    def test_unrecoverable_blocks_counted(self):
        cluster = make_cluster(num_nodes=3, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        holder = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(holder)
        cluster.run()
        assert cluster.replication_monitor.copies_failed >= 1
        assert cluster.replication_monitor.copies_completed == 0

    def test_enable_rereplication_idempotent(self):
        cluster = make_cluster()
        first = cluster.replication_monitor
        second = cluster.enable_rereplication()
        assert first is second

    def test_validation(self):
        cluster = make_cluster(num_nodes=2)
        with pytest.raises(ValueError):
            ReplicationMonitor(
                cluster.env,
                cluster.namenode,
                cluster.network,
                max_concurrent_per_source=0,
            )

    def test_sequential_failures_keep_data_available(self):
        cluster = make_cluster(num_nodes=6, replication=3)
        cluster.client.create_file("/f", 256 * MB)
        cluster.fail_node("node0")
        cluster.run()
        cluster.fail_node("node1")
        cluster.run()
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 3

    def test_concurrent_double_failure_repairs_over_a_chain(self):
        # Two replicas of the same block gone at once: one repair pass
        # pipelines source -> target1 -> target2 instead of two rounds.
        cluster = make_cluster(num_nodes=6, replication=3)
        cluster.client.create_file("/f", 128 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        first, second = cluster.namenode.get_block_locations(block.block_id)[:2]
        cluster.fail_node(first)
        cluster.fail_node(second)
        cluster.run()
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 3
            assert first not in live and second not in live


class TestThinning:
    def test_restart_after_repair_thins_the_excess_replica(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(victim)
        cluster.run()  # repair restores every block to 2 replicas
        cluster.restart_node(victim)
        cluster.run()  # the revived copies push blocks to 3: thin back
        monitor = cluster.replication_monitor
        assert monitor.excess_dropped > 0
        assert monitor.over_replicated_blocks() == []
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 2


class TestElasticity:
    def test_add_datanode_auto_names_and_registers(self):
        cluster = make_cluster()
        name = cluster.add_datanode().name
        assert name == "node4"
        assert name in cluster.datanodes
        assert name in [
            dn.name for dn in cluster.namenode.live_datanodes()
        ]

    def test_add_datanode_rejects_duplicate_names(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.add_datanode("node0")

    def test_join_triggers_rebalancing_onto_the_new_node(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        cluster.client.create_file("/a", 256 * MB)
        cluster.client.create_file("/b", 256 * MB)
        name = cluster.add_datanode().name
        cluster.run()
        monitor = cluster.replication_monitor
        assert monitor.rebalance_moves > 0
        assert cluster.namenode.datanode(name).disk_used > 0
        # Rebalancing moves, never duplicates: every block still holds
        # exactly its replication factor.
        for path in ("/a", "/b"):
            for blk in cluster.namenode.file_blocks(path):
                live = cluster.namenode.get_block_locations(blk.block_id)
                assert len(live) == 2
                assert len(set(live)) == 2

    def test_decommission_drains_all_blocks_then_releases(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 256 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        done = []
        event = cluster.decommission(victim)
        event.callbacks.append(lambda ev: done.append(ev.value))
        cluster.run()
        assert done and done[0][0] == victim
        assert victim in cluster.released_nodes
        assert cluster.decommission_log[0][1] == victim
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 2
            assert victim not in live

    def test_decommission_refuses_while_replication_would_drop(self):
        # Two nodes, replication 2: there is nowhere to drain to, so
        # the node must NOT be released (and its blocks stay live).
        cluster = make_cluster(num_nodes=2, replication=2)
        cluster.client.create_file("/f", 128 * MB)
        cluster.decommission("node1")
        cluster.run()
        assert "node1" not in cluster.released_nodes
        assert "node1" in cluster.replication_monitor.decommissioning_nodes()
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 2

    def test_join_unblocks_a_stuck_decommission(self):
        cluster = make_cluster(num_nodes=2, replication=2)
        cluster.client.create_file("/f", 128 * MB)
        cluster.decommission("node1")
        cluster.run()
        assert "node1" not in cluster.released_nodes
        replacement = cluster.add_datanode().name
        cluster.run()
        assert "node1" in cluster.released_nodes
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert sorted(live) == sorted(["node0", replacement])

    def test_decommission_is_idempotent(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        first = cluster.decommission("node2")
        second = cluster.decommission("node2")
        assert first is second
        cluster.run()
        assert [node for _, node in cluster.decommission_log] == ["node2"]

    def test_released_nodes_reject_further_lifecycle_calls(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        cluster.decommission("node2")
        cluster.run()
        with pytest.raises(RuntimeError):
            cluster.decommission("node2")
        with pytest.raises(RuntimeError):
            cluster.restart_node("node2")

    def test_decommission_unknown_node_raises(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.decommission("node99")


class TestRepairConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RepairConfig(max_concurrent_per_source=0)
        with pytest.raises(ValueError):
            RepairConfig(max_concurrent_per_target=0)
        with pytest.raises(ValueError):
            RepairConfig(backoff=-1.0)

    def test_retry_delay_grows_geometrically(self):
        config = RepairConfig(backoff=0.5, backoff_factor=2.0)
        assert config.retry_delay(1) == 0.5
        assert config.retry_delay(2) == 1.0
        assert config.retry_delay(3) == 2.0

    def test_monitor_accepts_a_custom_config(self):
        cluster = make_cluster(num_nodes=2)
        monitor = ReplicationMonitor(
            cluster.env,
            cluster.namenode,
            cluster.network,
            config=RepairConfig(max_concurrent_per_source=4, rebalance=False),
        )
        assert monitor.config.max_concurrent_per_source == 4
        assert monitor.config.rebalance is False
