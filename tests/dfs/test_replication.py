"""Tests for the re-replication monitor."""

import pytest

from repro.dfs import ReplicationMonitor
from repro.storage import MB
from tests.fixtures import make_dfs_cluster as make_cluster


class TestUnderReplicationDetection:
    def test_healthy_cluster_has_no_under_replicated_blocks(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        assert cluster.replication_monitor.under_replicated_blocks() == []

    def test_failure_exposes_under_replicated_blocks(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.datanodes[victim].fail()
        under = cluster.replication_monitor.under_replicated_blocks()
        assert under  # at least the first block lost a replica

    def test_target_capped_by_live_nodes(self):
        cluster = make_cluster(num_nodes=2, replication=2)
        cluster.client.create_file("/f", 64 * MB)
        cluster.datanodes["node1"].fail()
        # Only one live node: target replication becomes 1, so a block
        # with one live replica is NOT under-replicated.
        assert cluster.replication_monitor.under_replicated_blocks() == []


class TestRestoration:
    def test_fail_node_restores_replication_factor(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 256 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        victim = cluster.namenode.get_block_locations(block.block_id)[0]
        cluster.fail_node(victim)
        cluster.run()
        monitor = cluster.replication_monitor
        assert monitor.copies_completed > 0
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 2
            assert victim not in live

    def test_new_replicas_are_readable(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        victim = cluster.namenode.get_block_locations(block.block_id)[0]
        cluster.fail_node(victim)
        cluster.run()
        new_home = [
            n
            for n in cluster.namenode.get_block_locations(block.block_id)
        ][-1]
        assert cluster.namenode.datanode(new_home).has_block(block.block_id)

    def test_copies_move_real_bytes(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        before = {
            name: cluster.network.nic(name).bytes_moved
            for name in cluster.node_names()
        }
        cluster.fail_node(victim)
        cluster.run()
        moved = sum(
            cluster.network.nic(name).bytes_moved - before[name]
            for name in cluster.node_names()
        )
        assert moved > 0

    def test_unrecoverable_blocks_counted(self):
        cluster = make_cluster(num_nodes=3, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        holder = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(holder)
        cluster.run()
        assert cluster.replication_monitor.copies_failed >= 1
        assert cluster.replication_monitor.copies_completed == 0

    def test_enable_rereplication_idempotent(self):
        cluster = make_cluster()
        first = cluster.replication_monitor
        second = cluster.enable_rereplication()
        assert first is second

    def test_validation(self):
        cluster = make_cluster(num_nodes=2)
        with pytest.raises(ValueError):
            ReplicationMonitor(
                cluster.env,
                cluster.namenode,
                cluster.network,
                max_concurrent_per_source=0,
            )

    def test_sequential_failures_keep_data_available(self):
        cluster = make_cluster(num_nodes=6, replication=3)
        cluster.client.create_file("/f", 256 * MB)
        cluster.fail_node("node0")
        cluster.run()
        cluster.fail_node("node1")
        cluster.run()
        for blk in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(blk.block_id)
            assert len(live) == 3
