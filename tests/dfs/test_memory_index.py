"""Unit tests for the push-maintained memory-locality index."""

import pytest

from repro.dfs.memory_index import EMPTY_NODES, MemoryLocalityIndex


class TestIndexCore:
    def test_starts_empty(self):
        index = MemoryLocalityIndex()
        assert len(index) == 0
        assert index.nodes("blk-0") == frozenset()
        assert index.blocks() == {}

    def test_miss_returns_shared_empty_frozenset(self):
        index = MemoryLocalityIndex()
        assert index.nodes("blk-0") is EMPTY_NODES
        assert index.nodes("blk-1") is EMPTY_NODES

    def test_insert_and_query(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-0", True)
        index.update("node2", "blk-0", True)
        index.update("node1", "blk-1", True)
        assert index.nodes("blk-0") == {"node0", "node2"}
        assert index.nodes("blk-1") == {"node1"}
        assert len(index) == 2

    def test_eviction_removes_node(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-0", True)
        index.update("node1", "blk-0", True)
        index.update("node0", "blk-0", False)
        assert index.nodes("blk-0") == {"node1"}

    def test_last_eviction_drops_the_entry(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-0", True)
        index.update("node0", "blk-0", False)
        assert len(index) == 0
        assert index.nodes("blk-0") is EMPTY_NODES

    def test_updates_are_idempotent(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-0", True)
        index.update("node0", "blk-0", True)
        assert index.nodes("blk-0") == {"node0"}
        index.update("node0", "blk-0", False)
        index.update("node0", "blk-0", False)
        assert index.nodes("blk-0") == frozenset()

    def test_eviction_of_unknown_block_is_noop(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-unknown", False)
        assert len(index) == 0

    def test_purge_node_scrubs_only_that_node(self):
        index = MemoryLocalityIndex()
        index.update("node0", "blk-0", True)
        index.update("node1", "blk-0", True)
        index.update("node0", "blk-1", True)
        index.purge_node("node0")
        assert index.nodes("blk-0") == {"node1"}
        assert index.nodes("blk-1") == frozenset()

    def test_listener_fires_only_on_real_changes(self):
        index = MemoryLocalityIndex()
        deltas = []
        index.add_listener(lambda bid, node, res: deltas.append((bid, node, res)))
        index.update("node0", "blk-0", True)
        index.update("node0", "blk-0", True)  # duplicate: no delta
        index.update("node0", "blk-0", False)
        index.update("node0", "blk-0", False)  # duplicate: no delta
        assert deltas == [("blk-0", "node0", True), ("blk-0", "node0", False)]


class TestNameNodeWiring:
    """End-to-end: DataNode cache deltas flow into the NameNode index."""

    @pytest.fixture
    def blocks(self, namenode):
        meta = namenode.create_file("/data/f", 3 * namenode.block_size)
        return meta.blocks

    def _brute_force(self, namenode, block_id):
        return {
            node
            for node in namenode.get_block_locations(block_id)
            if namenode.datanode(node).block_in_memory(block_id)
        }

    def test_cache_insert_appears_in_memory_locations(self, namenode, blocks):
        block = blocks[0]
        holder = namenode.get_block_locations(block.block_id)[0]
        namenode.datanode(holder).cache.insert(block.block_id, block.nbytes)
        assert namenode.memory_locations(block.block_id) == [holder]
        assert namenode.memory_nodes(block.block_id) == {holder}
        assert self._brute_force(namenode, block.block_id) == {holder}

    def test_cache_evict_disappears(self, namenode, blocks):
        block = blocks[0]
        holder = namenode.get_block_locations(block.block_id)[0]
        datanode = namenode.datanode(holder)
        datanode.cache.insert(block.block_id, block.nbytes)
        datanode.cache.evict(block.block_id)
        assert namenode.memory_locations(block.block_id) == []
        assert self._brute_force(namenode, block.block_id) == set()

    def test_non_block_cache_keys_are_not_indexed(self, namenode, blocks):
        # Shuffle spills share the buffer cache but are not DFS blocks.
        holder = namenode.get_block_locations(blocks[0].block_id)[0]
        namenode.datanode(holder).cache.insert(("shuffle", "t-0"), 1024.0)
        assert len(namenode.locality_index) == 0

    def test_node_failure_flushes_its_entries(self, namenode, blocks):
        block = blocks[0]
        holder = namenode.get_block_locations(block.block_id)[0]
        datanode = namenode.datanode(holder)
        datanode.cache.insert(block.block_id, block.nbytes)
        datanode.fail()
        assert holder not in namenode.memory_nodes(block.block_id)

    def test_remove_datanode_purges_index(self, namenode, blocks):
        block = blocks[0]
        holder = namenode.get_block_locations(block.block_id)[0]
        namenode.datanode(holder).cache.insert(block.block_id, block.nbytes)
        namenode.remove_datanode(holder)
        assert holder not in namenode.memory_nodes(block.block_id)
