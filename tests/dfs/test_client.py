"""Tests for DFSClient replica selection, reads, and writes."""

import pytest

from repro.dfs import NameNodeError
from repro.storage import MB


def run_read(env, client, block, reader_node, job_id=None):
    results = {}

    def proc(env):
        read = client.read_block(block, reader_node, job_id=job_id)
        start = env.now
        yield read.done
        results["source"] = read.source
        results["serving_node"] = read.serving_node
        results["duration"] = env.now - start

    env.process(proc(env))
    env.run()
    return results


class TestReplicaSelection:
    def test_local_disk_replica_preferred(self, env, namenode, client):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        local = namenode.get_block_locations(block.block_id)[0]
        results = run_read(env, client, block, reader_node=local)
        assert results["serving_node"] == local
        assert results["source"] == "hdd"

    def test_remote_read_crosses_network(self, env, namenode, client, network):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        locations = namenode.get_block_locations(block.block_id)
        outsider = next(
            f"node{i}" for i in range(4) if f"node{i}" not in locations
        )
        results = run_read(env, client, block, reader_node=outsider)
        assert results["serving_node"] in locations
        assert network.nic(outsider).bytes_moved == pytest.approx(64 * MB)

    def test_memory_replica_preferred_over_local_disk(self, env, namenode, client):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        locations = namenode.get_block_locations(block.block_id)
        local, remote = locations[0], locations[1]

        def setup(env):
            yield namenode.datanode(remote).migrate_block_to_memory(block)

        env.process(setup(env))
        env.run()
        results = run_read(env, client, block, reader_node=local)
        assert results["source"] == "ram"
        assert results["serving_node"] == remote

    def test_local_memory_replica_preferred_over_remote_memory(
        self, env, namenode, client
    ):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        locations = namenode.get_block_locations(block.block_id)

        def setup(env):
            for node in locations:
                yield namenode.datanode(node).migrate_block_to_memory(block)

        env.process(setup(env))
        env.run()
        results = run_read(env, client, block, reader_node=locations[0])
        assert results["serving_node"] == locations[0]
        assert results["source"] == "ram"

    def test_memory_locations_reports_migrated_replicas(self, env, namenode, client):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        assert client.memory_locations(block) == []
        target = namenode.get_block_locations(block.block_id)[0]

        def setup(env):
            yield namenode.datanode(target).migrate_block_to_memory(block)

        env.process(setup(env))
        env.run()
        assert client.memory_locations(block) == [target]

    def test_read_with_no_live_replicas_raises(self, env, namenode, client):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        for node in namenode.get_block_locations(block.block_id):
            namenode.datanode(node).fail()
        with pytest.raises(NameNodeError):
            client.read_block(block, "node0")

    def test_ram_read_is_much_faster_than_disk_read(self, env, namenode, client):
        metadata = client.create_file("/f", 64 * MB)
        block = metadata.blocks[0]
        local = namenode.get_block_locations(block.block_id)[0]

        disk = run_read(env, client, block, reader_node=local)

        def setup(env):
            yield namenode.datanode(local).migrate_block_to_memory(block)

        env.process(setup(env))
        env.run()
        ram = run_read(env, client, block, reader_node=local)
        assert ram["duration"] < disk["duration"] / 10


class TestWrites:
    def test_write_file_creates_replicated_blocks(self, env, namenode, client):
        done = {}

        def proc(env):
            yield client.write_file("/out", 128 * MB, writer_node="node0")
            done["at"] = env.now

        env.process(proc(env))
        env.run()
        assert namenode.exists("/out")
        metadata = namenode.get_file("/out")
        for block in metadata.blocks:
            locations = namenode.get_block_locations(block.block_id)
            assert len(locations) == 2
            for node in locations:
                assert namenode.datanode(node).has_block(block.block_id)

    def test_write_pipeline_uses_network_for_remote_replicas(
        self, env, namenode, client, network
    ):
        def proc(env):
            yield client.write_file("/out", 64 * MB, writer_node="node0")

        env.process(proc(env))
        env.run()
        # One remote replica crosses node0's NIC.
        assert network.nic("node0").bytes_moved == pytest.approx(64 * MB)

    def test_write_single_replica_local_is_instant(self, env, namenode, client):
        times = {}

        def proc(env):
            start = env.now
            yield client.write_file(
                "/out", 64 * MB, writer_node="node0", replication=1
            )
            times["elapsed"] = env.now - start

        env.process(proc(env))
        env.run()
        # NameNode may place the single replica remotely; but with a
        # preferred writer node it must be local -> absorbed instantly.
        assert times["elapsed"] == pytest.approx(0.0)


class TestIgnemApiWithoutMaster:
    def test_migrate_is_noop_without_master(self, client):
        client.create_file("/f", 64 * MB)
        client.migrate(["/f"], job_id="j1")  # must not raise
        client.evict(["/f"], job_id="j1")
