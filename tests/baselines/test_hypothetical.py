"""Tests for the hypothetical instantaneous scheme (Fig 7 baseline)."""

import pytest

from repro import JobSpec, build_paper_testbed
from repro.baselines import (
    MemoryTimeline,
    hypothetical_memory_timelines,
    ignem_memory_timelines,
    mean_footprint,
)
from repro.metrics.records import JobRecord
from repro.storage import GB, MB


def make_job_record(job_id, submitted, end, input_bytes=64 * MB):
    return JobRecord(
        job_id=job_id,
        name=job_id,
        submitted_at=submitted,
        first_task_start=submitted + 1,
        end=end,
        input_bytes=input_bytes,
        num_maps=1,
        num_reduces=0,
    )


class TestMemoryTimeline:
    def test_nonzero_samples(self):
        timeline = MemoryTimeline(
            node="n", points=((0.0, 0.0), (1.0, 100.0), (3.0, 0.0), (4.0, 50.0))
        )
        assert timeline.nonzero_samples() == [100.0, 50.0]

    def test_time_weighted_mean_ignores_zero_periods(self):
        timeline = MemoryTimeline(
            node="n",
            points=((0.0, 0.0), (10.0, 100.0), (12.0, 0.0), (20.0, 200.0), (24.0, 0.0)),
        )
        # 100 bytes for 2s + 200 bytes for 4s over 6 non-zero seconds.
        assert timeline.time_weighted_mean_nonzero() == pytest.approx(
            (100 * 2 + 200 * 4) / 6
        )

    def test_empty_timeline_mean_is_zero(self):
        timeline = MemoryTimeline(node="n", points=((0.0, 0.0),))
        assert timeline.time_weighted_mean_nonzero() == 0.0
        assert timeline.peak() == 0.0

    def test_peak(self):
        timeline = MemoryTimeline(node="n", points=((0.0, 5.0), (1.0, 9.0)))
        assert timeline.peak() == 9.0


class TestHypotheticalTimelines:
    def test_memory_held_from_submit_to_completion(self):
        cluster = build_paper_testbed(seed=1)
        cluster.client.create_file("/f", 64 * MB)
        jobs = [make_job_record("j1", submitted=10.0, end=50.0)]
        timelines = hypothetical_memory_timelines(
            cluster, jobs, {"j1": ("/f",)}, seed=0
        )
        assert len(timelines) == 1  # one block -> one chosen server
        timeline = next(iter(timelines.values()))
        levels = dict(timeline.points)
        assert levels[10.0] == 64 * MB
        assert levels[50.0] == 0.0

    def test_overlapping_jobs_stack(self):
        cluster = build_paper_testbed(seed=1)
        cluster.client.create_file("/f", 64 * MB)
        jobs = [
            make_job_record("j1", submitted=0.0, end=100.0),
            make_job_record("j2", submitted=10.0, end=90.0),
        ]
        timelines = hypothetical_memory_timelines(
            cluster, jobs, {"j1": ("/f",), "j2": ("/f",)}, seed=0
        )
        peak = max(t.peak() for t in timelines.values())
        # Same seeded replica choice per job may or may not coincide;
        # total across servers must be 2 blocks at the overlap.
        total_peak = sum(t.peak() for t in timelines.values())
        assert total_peak == pytest.approx(128 * MB)
        assert peak >= 64 * MB

    def test_missing_paths_ignored(self):
        cluster = build_paper_testbed(seed=1)
        jobs = [make_job_record("j1", submitted=0.0, end=10.0)]
        timelines = hypothetical_memory_timelines(
            cluster, jobs, {"j1": ("/ghost",)}, seed=0
        )
        assert timelines == {}

    def test_mean_footprint_averages_servers(self):
        timelines = {
            "a": MemoryTimeline("a", ((0.0, 0.0), (0.0, 100.0), (10.0, 0.0))),
            "b": MemoryTimeline("b", ((0.0, 0.0), (0.0, 300.0), (10.0, 0.0))),
        }
        assert mean_footprint(timelines) == pytest.approx(200.0)

    def test_mean_footprint_empty(self):
        assert mean_footprint({}) == 0.0


class TestIgnemTimelines:
    def test_requires_ignem_enabled(self):
        cluster = build_paper_testbed(seed=1)
        with pytest.raises(ValueError):
            ignem_memory_timelines(cluster)

    def test_reflects_slave_usage(self):
        cluster = build_paper_testbed(seed=1, ignem=True)
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()
        timelines = ignem_memory_timelines(cluster)
        assert sum(t.peak() for t in timelines.values()) == pytest.approx(128 * MB)
