"""Tests for the seeded randomness helpers."""

import pytest

from repro.sim import RandomSource, derive_seed


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.py.random() for _ in range(5)] == [
            b.py.random() for _ in range(5)
        ]

    def test_different_seed_different_stream(self):
        assert RandomSource(1).py.random() != RandomSource(2).py.random()

    def test_spawn_is_stable_by_name(self):
        parent = RandomSource(7)
        assert parent.spawn("child").seed == RandomSource(7).spawn("child").seed

    def test_spawn_names_are_independent(self):
        parent = RandomSource(7)
        assert parent.spawn("a").seed != parent.spawn("b").seed

    def test_spawn_does_not_consume_parent_state(self):
        a = RandomSource(7)
        b = RandomSource(7)
        a.spawn("x")
        a.spawn("y")
        assert a.py.random() == b.py.random()

    def test_numpy_generator_seeded(self):
        a = RandomSource(3)
        b = RandomSource(3)
        assert a.np.random() == b.np.random()

    def test_convenience_draws(self):
        source = RandomSource(0)
        assert 0 <= source.uniform(0, 1) <= 1
        assert source.expovariate(1.0) >= 0
        assert source.lognormal(0, 1) > 0
        assert source.choice([1, 2, 3]) in (1, 2, 3)
        assert set(source.sample([1, 2, 3], 2)) <= {1, 2, 3}
        assert 1 <= source.randint(1, 5) <= 5
        items = [1, 2, 3, 4]
        source.shuffle(items)
        assert sorted(items) == [1, 2, 3, 4]

    def test_derive_seed_matches_spawn(self):
        assert derive_seed(7, "child") == RandomSource(7).spawn("child").seed


class TestPresets:
    def test_hdd_slower_than_ssd_slower_than_ram(self):
        from repro.sim import Environment
        from repro.storage import make_hdd, make_ram, make_ssd

        env = Environment()
        hdd = make_hdd(env)
        ssd = make_ssd(env)
        ram = make_ram(env)
        assert hdd.bandwidth < ssd.bandwidth < ram.bandwidth

    def test_only_hdd_pays_meaningful_seek_latency(self):
        from repro.sim import Environment
        from repro.storage import make_hdd, make_ram, make_ssd

        env = Environment()
        assert make_hdd(env).latency > make_ssd(env).latency
        assert make_ram(env).latency == 0.0

    def test_ram_streams_run_at_full_rate_under_concurrency(self):
        from repro.sim import Environment
        from repro.storage import MB, make_ram
        from repro.storage.presets import RAM_STREAM_RATE

        env = Environment()
        ram = make_ram(env)
        ends = []

        def reader(env):
            yield ram.transfer(64 * MB)
            ends.append(env.now)

        for _ in range(16):
            env.process(reader(env))
        env.run()
        expected = 64 * MB / RAM_STREAM_RATE
        assert all(end == pytest.approx(expected, rel=1e-6) for end in ends)
