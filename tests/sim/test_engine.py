"""Tests for the simulation engine and event loop."""

import pytest

from repro.sim import Environment, Event, SimulationError


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_run_empty_schedule_returns_none():
    env = Environment()
    assert env.run() is None


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    env.process(proc(env))
    env.run()
    assert env.now == 5


def test_run_until_number_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_raises():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    process = env.process(proc(env))
    assert env.run(until=process) == "done"
    assert env.now == 3


def test_run_until_never_triggered_event_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_run_until_already_processed_event_returns_immediately():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()
    assert env.run(until=event) == "early"


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(1)
        order.append(label)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.process(proc(env, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    # The Initialize event is scheduled at t=0.
    assert env.peek() == 0.0
    env.step()
    assert env.peek() == 7.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_waited_on_process_exception_delivered_to_waiter():
    env = Environment()
    seen = []

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    def waiter(env, child):
        try:
            yield child
        except RuntimeError as err:
            seen.append(str(err))

    child = env.process(bad(env))
    env.process(waiter(env, child))
    env.run()
    assert seen == ["boom"]


def test_processes_can_wait_on_each_other():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2)
        log.append(("child-done", env.now))
        return 99

    def parent(env):
        value = yield env.process(child(env))
        log.append(("parent-got", value, env.now))

    env.process(parent(env))
    env.run()
    assert log == [("child-done", 2.0), ("parent-got", 99, 2.0)]


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_double_trigger_raises():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_yield_none_resumes_same_timestep():
    env = Environment()
    log = []

    def proc(env):
        log.append(env.now)
        yield None
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0, 0.0]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_clock_never_goes_backwards():
    env = Environment()
    times = []

    def proc(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    for delay in [5, 1, 3, 2, 4]:
        env.process(proc(env, delay))
    env.run()
    assert times == sorted(times)
