"""Tests for Resource, Store, PriorityStore, and Container."""

import pytest

from repro.sim import (
    Container,
    Environment,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serializes_users_beyond_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def user(env, resource, name, hold):
            with resource.request() as req:
                yield req
                log.append((name, "start", env.now))
                yield env.timeout(hold)
                log.append((name, "end", env.now))

        env.process(user(env, resource, "a", 3))
        env.process(user(env, resource, "b", 2))
        env.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 3.0),
            ("b", "start", 3.0),
            ("b", "end", 5.0),
        ]

    def test_capacity_two_allows_concurrency(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        starts = []

        def user(env, resource, name):
            with resource.request() as req:
                yield req
                starts.append((name, env.now))
                yield env.timeout(5)

        for name in ["a", "b", "c"]:
            env.process(user(env, resource, name))
        env.run()
        assert starts == [("a", 0.0), ("b", 0.0), ("c", 5.0)]

    def test_count_tracks_holders(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        counts = []

        def user(env, resource, arrive):
            yield env.timeout(arrive)
            with resource.request() as req:
                yield req
                counts.append(resource.count)
                yield env.timeout(1)

        env.process(user(env, resource, 0.0))
        env.process(user(env, resource, 0.5))
        env.run()
        assert counts == [1, 2]
        assert resource.count == 0

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(env, resource, name, arrive):
            yield env.timeout(arrive)
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, resource, "first", 0))
        env.process(user(env, resource, "second", 1))
        env.process(user(env, resource, "third", 2))
        env.run()
        assert order == ["first", "second", "third"]

    def test_cancel_pending_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        granted = []

        def holder(env, resource):
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env, resource):
            req = resource.request()
            yield env.timeout(1)
            req.cancel()

        def patient(env, resource):
            yield env.timeout(2)
            with resource.request() as req:
                yield req
                granted.append(env.now)

        env.process(holder(env, resource))
        env.process(impatient(env, resource))
        env.process(patient(env, resource))
        env.run()
        assert granted == [10.0]


class TestStore:
    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(4)
            yield store.put("widget")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("widget", 4.0)]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env, store):
            for item in ["a", "b", "c"]:
                yield store.put(item)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["a", "b", "c"]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer(env, store):
            yield env.timeout(5)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put-first", 0.0) in log
        assert ("put-second", 5.0) in log

    def test_filtered_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env, store):
            yield store.put(1)
            yield store.put(2)
            yield store.put(3)

        def consumer(env, store):
            item = yield store.get(filter=lambda x: x % 2 == 0)
            got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [2]
        assert store.items == [1, 3]

    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestPriorityStore:
    def test_releases_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env, store):
            yield store.put(PriorityItem(3, "low"))
            yield store.put(PriorityItem(1, "high"))
            yield store.put(PriorityItem(2, "mid"))

        def consumer(env, store):
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["high", "mid", "low"]

    def test_ties_broken_by_insertion_order(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env, store):
            yield store.put(PriorityItem(1, "first"))
            yield store.put(PriorityItem(1, "second"))

        def consumer(env, store):
            yield env.timeout(1)
            for _ in range(2):
                item = yield store.get()
                got.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["first", "second"]

    def test_remove_by_predicate(self):
        env = Environment()
        store = PriorityStore(env)

        def producer(env, store):
            for priority in range(6):
                yield store.put(PriorityItem(priority, f"item-{priority}"))

        env.process(producer(env, store))
        env.run()
        removed = store.remove(lambda entry: entry.priority % 2 == 0)
        assert sorted(item.item for item in removed) == [
            "item-0",
            "item-2",
            "item-4",
        ]
        assert store._size() == 3

    def test_filtered_get_from_priority_store(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env, store):
            yield store.put(PriorityItem(1, "a"))
            yield store.put(PriorityItem(2, "b"))

        def consumer(env, store):
            yield env.timeout(1)
            item = yield store.get(filter=lambda entry: entry.item == "b")
            got.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["b"]
        assert store._size() == 1


class TestPriorityStoreCompaction:
    """Tombstoned (lazily-cancelled) entries must not grow without bound."""

    def _fill(self, store, count, start=0):
        for priority in range(start, start + count):
            store.put_nowait(PriorityItem(priority, f"item-{priority}"))

    def test_remove_compacts_when_dead_exceeds_half(self):
        env = Environment()
        store = PriorityStore(env)
        self._fill(store, 100)
        removed = store.remove(lambda entry: entry.priority >= 40)
        assert len(removed) == 60
        # 60 dead of 100 is over half: the heap must have been rebuilt.
        assert store._dead == 0
        assert len(store.items) == 40
        assert store._size() == 40

    def test_garbage_stays_bounded_under_churn(self):
        env = Environment()
        store = PriorityStore(env)
        for round_no in range(50):
            self._fill(store, 20, start=round_no * 20)
            store.remove(lambda entry: entry.priority % 2 == 0)
        # Without compaction the heap would hold ~500 tombstones; with it,
        # dead entries never exceed half the heap.
        assert store._dead * 2 <= len(store.items)
        assert store._size() == 500

    def test_removed_items_never_served(self):
        env = Environment()
        store = PriorityStore(env)
        got = []
        self._fill(store, 10)
        store.remove(lambda entry: entry.priority < 5)

        def consumer(env, store):
            for _ in range(5):
                item = yield store.get()
                got.append(item.item)

        env.process(consumer(env, store))
        env.run()
        assert got == [f"item-{p}" for p in range(5, 10)]

    def test_tombstones_do_not_count_against_capacity(self):
        env = Environment()
        store = PriorityStore(env, capacity=3)
        self._fill(store, 3)
        store.remove(lambda entry: entry.priority == 1)
        # One live slot was freed; a put must succeed immediately.
        store.put_nowait(PriorityItem(99, "replacement"))
        assert store._size() == 3
        with pytest.raises(RuntimeError):
            store.put_nowait(PriorityItem(100, "overflow"))

    def test_filtered_get_tombstones_below_top(self):
        env = Environment()
        store = PriorityStore(env)
        got = []
        self._fill(store, 4)

        def consumer(env, store):
            item = yield store.get(filter=lambda e: e.priority == 3)
            got.append(item.item)
            item = yield store.get()
            got.append(item.item)

        env.process(consumer(env, store))
        env.run()
        assert got == ["item-3", "item-0"]
        assert store._size() == 2


class TestContainer:
    def test_init_level(self):
        env = Environment()
        container = Container(env, capacity=100, init=40)
        assert container.level == 40

    def test_get_blocks_until_level_sufficient(self):
        env = Environment()
        container = Container(env, capacity=100)
        log = []

        def consumer(env, container):
            yield container.get(10)
            log.append(("got", env.now))

        def producer(env, container):
            yield env.timeout(3)
            yield container.put(10)

        env.process(consumer(env, container))
        env.process(producer(env, container))
        env.run()
        assert log == [("got", 3.0)]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=10, init=10)
        log = []

        def producer(env, container):
            yield container.put(5)
            log.append(("put", env.now))

        def consumer(env, container):
            yield env.timeout(2)
            yield container.get(5)

        env.process(producer(env, container))
        env.process(consumer(env, container))
        env.run()
        assert log == [("put", 2.0)]

    def test_invalid_amounts_rejected(self):
        env = Environment()
        container = Container(env, capacity=10)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)

    def test_invalid_init_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
