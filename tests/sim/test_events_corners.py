"""Corner-case tests for event primitives."""

import pytest

from repro.sim import Environment, Event, SimulationError
from repro.sim.events import ConditionValue


class TestEventStates:
    def test_fresh_event_is_untriggered(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event.ok  # default until failed

    def test_succeed_marks_triggered_then_processed(self):
        env = Environment()
        event = env.event()
        event.succeed("v")
        assert event.triggered
        assert not event.processed
        env.run()
        assert event.processed
        assert event.value == "v"

    def test_trigger_copies_another_events_outcome(self):
        env = Environment()
        source = env.event()
        source.succeed(123)
        target = env.event()
        target.trigger(source)
        assert target.triggered
        assert target.value == 123

    def test_trigger_copies_failure(self):
        env = Environment()
        source = env.event()
        error = RuntimeError("nope")
        source.fail(error)
        target = env.event()
        target.trigger(source)
        assert not target.ok
        # Drain both failures through waiters so the engine doesn't
        # re-raise them as unhandled.
        caught = []

        def waiter(env, ev):
            try:
                yield ev
            except RuntimeError as err:
                caught.append(err)

        env.process(waiter(env, source))
        env.process(waiter(env, target))
        env.run()
        assert caught == [error, error]

    def test_unhandled_failed_event_surfaces_in_run(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            env.run()

    def test_repr_shows_state(self):
        env = Environment()
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)


class TestConditionValueSemantics:
    def test_equality_with_dict(self):
        env = Environment()
        a = env.event().succeed(1)
        env.run()
        value = ConditionValue()
        value.events.append(a)
        assert value == {a: 1}
        assert value == value
        assert (value == 42) is False or True  # NotImplemented path

    def test_iteration_order_matches_event_order(self):
        env = Environment()
        log = {}

        def proc(env):
            t1 = env.timeout(2, value="slow")
            t2 = env.timeout(1, value="fast")
            results = yield env.all_of([t1, t2])
            log["order"] = list(results.values())

        env.process(proc(env))
        env.run()
        # AllOf preserves the order events were passed, not firing order.
        assert log["order"] == ["slow", "fast"]


class TestProcessReturnedEventChaining:
    def test_yielding_processed_event_continues_inline(self):
        env = Environment()
        trace = []

        def proc(env):
            event = env.event()
            event.succeed("early")
            yield env.timeout(1)  # let it become processed
            value = yield event  # already processed: resume immediately
            trace.append((value, env.now))

        env.process(proc(env))
        env.run()
        assert trace == [("early", 1.0)]

    def test_two_waiters_on_one_event_both_resume(self):
        env = Environment()
        shared = Environment.event(env)
        resumed = []

        def waiter(env, name):
            value = yield shared
            resumed.append((name, value))

        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))

        def firer(env):
            yield env.timeout(2)
            shared.succeed("go")

        env.process(firer(env))
        env.run()
        assert sorted(resumed) == [("a", "go"), ("b", "go")]
