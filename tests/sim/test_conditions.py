"""Tests for AllOf / AnyOf condition events."""

import pytest

from repro.sim import Environment


def test_all_of_waits_for_every_event():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(5, value="b")
        results = yield env.all_of([t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert log == [(5.0, ["a", "b"])]


def test_any_of_returns_on_first_event():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield env.any_of([t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert log == [(2.0, ["fast"])]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    log = []

    def proc(env):
        results = yield env.all_of([])
        log.append((env.now, len(results)))

    env.process(proc(env))
    env.run()
    assert log == [(0.0, 0)]


def test_any_of_empty_triggers_immediately():
    env = Environment()
    log = []

    def proc(env):
        yield env.any_of([])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_condition_value_mapping_interface():
    env = Environment()
    captured = {}

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(2, value="y")
        results = yield env.all_of([t1, t2])
        captured["contains"] = t1 in results
        captured["getitem"] = results[t1]
        captured["dict"] = results.todict()
        captured["len"] = len(results)
        captured["keys"] = list(results.keys())
        captured["items"] = list(results.items())

    env.process(proc(env))
    env.run()
    assert captured["contains"] is True
    assert captured["getitem"] == "x"
    assert captured["len"] == 2
    assert len(captured["dict"]) == 2
    assert len(captured["keys"]) == 2
    assert len(captured["items"]) == 2


def test_condition_value_missing_key_raises():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        results = yield env.any_of([t1, t2])
        with pytest.raises(KeyError):
            _ = results[t2]

    env.process(proc(env))
    env.run()


def test_all_of_propagates_child_failure():
    env = Environment()
    seen = []

    def failer(env):
        yield env.timeout(1)
        raise ValueError("child failed")

    def waiter(env, child):
        try:
            yield env.all_of([child, env.timeout(10)])
        except ValueError as err:
            seen.append(str(err))

    child = env.process(failer(env))
    env.process(waiter(env, child))
    env.run()
    assert seen == ["child failed"]


def test_all_of_with_already_processed_events():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(1, value="first")
        yield t1  # t1 now processed
        results = yield env.all_of([t1, env.timeout(1, value="second")])
        log.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert log == [(2.0, ["first", "second"])]


def test_condition_rejects_mixed_environments():
    env1 = Environment()
    env2 = Environment()
    t_foreign = env2.timeout(1)
    with pytest.raises(ValueError):
        env1.all_of([env1.timeout(1), t_foreign])


def test_any_of_collects_simultaneous_events():
    env = Environment()
    log = []

    def proc(env):
        t1 = env.timeout(3, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.any_of([t1, t2])
        log.append(sorted(results.values()))

    env.process(proc(env))
    env.run()
    # At minimum the first of the simultaneous events is present.
    assert log and "a" in log[0]
