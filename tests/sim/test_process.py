"""Tests for process behaviour: interrupts, liveness, return values."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_is_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return {"answer": 42}

    process = env.process(proc(env))
    env.run()
    assert process.value == {"answer": 42}


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(2)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [5.0]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    def late_interrupter(env, victim):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            victim.interrupt()

    victim = env.process(quick(env))
    env.process(late_interrupter(env, victim))
    env.run()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfish(env):
        yield env.timeout(0)
        with pytest.raises(SimulationError):
            env.active_process.interrupt()

    env.process(selfish(env))
    env.run()


def test_unhandled_interrupt_kills_process_and_surfaces():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt(cause="fatal")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    with pytest.raises(Interrupt):
        env.run()
    assert not victim.is_alive


def test_process_requires_generator():
    env = Environment()

    def not_a_generator():
        return 42

    with pytest.raises(TypeError):
        env.process(not_a_generator())


def test_process_name_from_generator():
    env = Environment()

    def my_worker(env):
        yield env.timeout(1)

    process = env.process(my_worker(env))
    assert "my_worker" in repr(process) or process.name


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None


def test_target_tracks_waited_event():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    process = env.process(proc(env))
    env.step()  # run the Initialize event
    assert process.target is not None
    env.run()


def test_many_sequential_processes_complete():
    env = Environment()
    done = []

    def worker(env, index):
        yield env.timeout(index % 7)
        done.append(index)

    for index in range(200):
        env.process(worker(env, index))
    env.run()
    assert sorted(done) == list(range(200))
