"""The `repro heal` demo: self-healing passes, the contrast mode fails."""

import json

from repro.faults.heal import format_heal_result, run_heal_demo


class TestHealDemo:
    def test_repair_on_ends_clean(self):
        result = run_heal_demo(seed=0, num_jobs=6)
        assert result.ok, result.violations
        assert result.repair_copies > 0
        assert result.decommissions_completed == 1
        assert result.under_replicated == 0
        assert result.missing_blocks == 0
        report = format_heal_result(result)
        assert "PASS" in report
        json.dumps(result.to_dict())  # serializable for heal.json

    def test_contrast_mode_is_convicted(self):
        result = run_heal_demo(seed=0, num_jobs=6, disable_repair=True)
        assert not result.ok
        assert result.repair_copies == 0
        assert any("under-replication" in v for v in result.violations)
        assert "FAIL" in format_heal_result(result)

    def test_demo_is_deterministic(self):
        first = run_heal_demo(seed=1, num_jobs=6)
        second = run_heal_demo(seed=1, num_jobs=6)
        assert first.to_dict() == second.to_dict()
