"""FaultSchedule: deterministic, sorted, and safely bounded."""

import pytest

from repro.faults import FaultEvent, FaultSchedule

NODES = [f"node{i}" for i in range(8)]


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "crash", "node0")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor", "node0")


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            (
                FaultEvent(5.0, "restart", "node0"),
                FaultEvent(1.0, "crash", "node0"),
                FaultEvent(3.0, "master_fail"),
            )
        )
        assert [e.time for e in schedule] == [1.0, 3.0, 5.0]

    def test_same_seed_same_schedule(self):
        first = FaultSchedule.random(42, NODES, horizon=300.0)
        second = FaultSchedule.random(42, NODES, horizon=300.0)
        assert first.events == second.events

    def test_different_seeds_differ(self):
        schedules = {
            FaultSchedule.random(seed, NODES, horizon=300.0).events
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_every_crash_has_a_later_restart(self):
        for seed in range(20):
            schedule = FaultSchedule.random(seed, NODES, horizon=300.0)
            crashes = {
                e.target: e.time for e in schedule if e.kind == "crash"
            }
            restarts = {
                e.target: e.time for e in schedule if e.kind == "restart"
            }
            assert set(crashes) == set(restarts)
            for node, at in crashes.items():
                assert restarts[node] > at

    def test_crash_victim_cap(self):
        for seed in range(20):
            schedule = FaultSchedule.random(
                seed, NODES, horizon=300.0, max_node_crashes=2
            )
            assert len(schedule.crashed_nodes()) <= 2

    def test_rejects_crashing_too_many_nodes(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(0, ["a", "b"], horizon=100.0, max_node_crashes=2)

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(0, NODES, horizon=0.0)

    def test_empty_schedule(self):
        schedule = FaultSchedule(())
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.crashed_nodes() == []


ELASTIC_KINDS = ("kill", "join", "decommission")


class TestElasticity:
    def test_flag_off_matches_the_old_draws_exactly(self):
        for seed in range(10):
            old = FaultSchedule.random(seed, NODES, horizon=300.0)
            flagged = FaultSchedule.random(
                seed, NODES, horizon=300.0, elasticity=False
            )
            assert old.events == flagged.events

    def test_classic_draws_unchanged_under_the_flag(self):
        # Elasticity draws happen after every classic draw, so the
        # classic portion of any seed's schedule never moves.
        for seed in range(10):
            classic = FaultSchedule.random(seed, NODES, horizon=300.0)
            elastic = FaultSchedule.random(
                seed, NODES, horizon=300.0, elasticity=True
            )
            kept = tuple(
                e for e in elastic if e.kind not in ELASTIC_KINDS
            )
            assert kept == classic.events

    def test_some_seed_draws_every_elastic_kind(self):
        kinds = set()
        for seed in range(20):
            schedule = FaultSchedule.random(
                seed, NODES, horizon=300.0, elasticity=True
            )
            kinds |= {e.kind for e in schedule if e.kind in ELASTIC_KINDS}
        assert kinds == set(ELASTIC_KINDS)

    def test_kill_and_decommission_avoid_crashed_nodes(self):
        for seed in range(20):
            schedule = FaultSchedule.random(
                seed, NODES, horizon=300.0, elasticity=True
            )
            crashed = set(schedule.crashed_nodes())
            targets = [
                e.target
                for e in schedule
                if e.kind in ("kill", "decommission")
            ]
            assert len(targets) == len(set(targets))
            assert not crashed & set(targets)

    def test_join_names_a_brand_new_node(self):
        for seed in range(20):
            schedule = FaultSchedule.random(
                seed, NODES, horizon=300.0, elasticity=True
            )
            for event in schedule:
                if event.kind == "join":
                    assert event.target == f"node{len(NODES)}"
