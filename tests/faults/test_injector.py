"""FaultInjector: schedules drive real cluster failure hooks."""

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.net.network import NetworkError
from repro.storage import MB
from tests.fixtures import make_ignem_cluster as make_cluster


def run_with(cluster, schedule, until=None):
    injector = FaultInjector(cluster, schedule)
    injector.start()
    cluster.run(until=until)
    return injector


class TestCrashRestart:
    def test_crash_takes_node_down_and_restart_revives(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "crash", "node1"),
                FaultEvent(5.0, "restart", "node1"),
            )
        )
        observations = []

        def probe(env):
            yield env.timeout(2.0)
            observations.append(
                (
                    cluster.datanodes["node1"].alive,
                    cluster.network.node_is_down("node1"),
                )
            )

        cluster.env.process(probe(cluster.env), name="probe")
        injector = run_with(cluster, schedule)

        assert observations == [(False, True)]
        assert cluster.datanodes["node1"].alive
        assert not cluster.network.node_is_down("node1")
        assert injector.down_nodes == set()
        assert injector.max_concurrent_down == 1
        assert [e.kind for _, e in injector.applied] == ["crash", "restart"]

    def test_crash_is_idempotent(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "crash", "node1"),
                FaultEvent(2.0, "crash", "node1"),
                FaultEvent(5.0, "restart", "node1"),
            )
        )
        injector = run_with(cluster, schedule)
        # The duplicate crash is swallowed, not applied twice.
        assert [e.kind for _, e in injector.applied] == ["crash", "restart"]


class TestSlowDisk:
    def test_bandwidth_degrades_then_recovers(self):
        cluster = make_cluster()
        nominal = cluster.datanodes["node2"].disk.bandwidth
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "slow_disk_start", "node2", 0.1),
                FaultEvent(3.0, "slow_disk_end", "node2"),
            )
        )
        inside = []

        def probe(env):
            yield env.timeout(2.0)
            inside.append(cluster.datanodes["node2"].disk.bandwidth)

        cluster.env.process(probe(cluster.env), name="probe")
        run_with(cluster, schedule)

        assert inside == [pytest.approx(nominal * 0.1)]
        assert cluster.datanodes["node2"].disk.bandwidth == pytest.approx(nominal)


class TestNetLoss:
    def test_window_installs_and_clears_hooks(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "net_loss_start", None, 1.0),
                FaultEvent(3.0, "net_loss_end"),
            )
        )
        outcomes = []

        def probe(env):
            yield env.timeout(2.0)
            assert cluster.network.fault_hook is not None
            try:
                yield cluster.network.transfer("node0", "node1", 1 * MB)
                outcomes.append("delivered")
            except NetworkError:
                outcomes.append("lost")

        cluster.env.process(probe(cluster.env), name="probe")
        run_with(cluster, schedule)

        # Loss probability 1.0: the in-window transfer must be dropped.
        assert outcomes == ["lost"]
        assert cluster.network.fault_hook is None
        assert cluster.ignem_master.rpc_fault is None


class TestElasticityEvents:
    def test_kill_is_a_crash_with_no_restart(self):
        cluster = make_cluster(rereplication=True)
        cluster.client.create_file("/f", 128 * MB)
        schedule = FaultSchedule((FaultEvent(1.0, "kill", "node1"),))
        injector = run_with(cluster, schedule)
        assert [e.kind for _, e in injector.applied] == ["kill"]
        assert not cluster.datanodes["node1"].alive
        assert cluster.network.node_is_down("node1")
        # Permanent loss: repair restored every block elsewhere.
        assert cluster.replication_monitor.under_replicated_blocks() == []

    def test_kill_of_a_down_node_is_swallowed(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "crash", "node1"),
                FaultEvent(2.0, "kill", "node1"),
            )
        )
        injector = run_with(cluster, schedule)
        assert [e.kind for _, e in injector.applied] == ["crash"]

    def test_join_adds_a_live_datanode(self):
        cluster = make_cluster(rereplication=True)
        schedule = FaultSchedule((FaultEvent(1.0, "join", "node4"),))
        injector = run_with(cluster, schedule)
        assert [e.kind for _, e in injector.applied] == ["join"]
        assert "node4" in cluster.datanodes
        assert "node4" in [
            dn.name for dn in cluster.namenode.live_datanodes()
        ]

    def test_join_of_an_existing_name_is_swallowed(self):
        cluster = make_cluster()
        schedule = FaultSchedule((FaultEvent(1.0, "join", "node0"),))
        injector = run_with(cluster, schedule)
        assert injector.applied == []

    def test_decommission_drains_then_releases(self):
        cluster = make_cluster(rereplication=True)
        cluster.client.create_file("/f", 128 * MB)
        schedule = FaultSchedule((FaultEvent(1.0, "decommission", "node2"),))
        injector = run_with(cluster, schedule)
        assert [e.kind for _, e in injector.applied] == ["decommission"]
        assert [node for _, node in injector.decommissions_completed] == [
            "node2"
        ]
        assert "node2" in cluster.released_nodes
        for block in cluster.namenode.file_blocks("/f"):
            live = cluster.namenode.get_block_locations(block.block_id)
            assert len(live) == 2
            assert "node2" not in live

    def test_faults_against_a_released_node_are_swallowed(self):
        cluster = make_cluster(rereplication=True)
        cluster.client.create_file("/f", 64 * MB)
        schedule = FaultSchedule(
            (
                FaultEvent(1.0, "decommission", "node2"),
                FaultEvent(200.0, "crash", "node2"),
                FaultEvent(201.0, "kill", "node2"),
                FaultEvent(202.0, "restart", "node2"),
            )
        )
        injector = run_with(cluster, schedule)
        assert [e.kind for _, e in injector.applied] == ["decommission"]


class TestDeterminism:
    def test_identical_runs_apply_identical_faults(self):
        def one_run():
            cluster = make_cluster()
            schedule = FaultSchedule.random(7, cluster.node_names(), horizon=60.0)
            injector = run_with(cluster, schedule)
            return injector.applied

        assert one_run() == one_run()

    def test_empty_schedule_is_a_no_op(self):
        cluster = make_cluster()
        injector = run_with(cluster, FaultSchedule(()))
        assert injector.applied == []
        assert cluster.env.now == 0.0
