"""ChaosRunner: seeded sweeps complete with zero invariant violations."""

from repro.faults import ChaosRunner


class TestChaosRuns:
    def test_single_seed_upholds_invariants(self):
        result = ChaosRunner(num_jobs=5).run_seed(0)
        assert result.violations == []
        assert result.jobs_total == 5
        assert result.jobs_completed + result.jobs_failed >= result.jobs_total
        assert result.sim_time > 0
        assert result.ok

    def test_same_seed_is_deterministic(self):
        def run():
            r = ChaosRunner(num_jobs=5).run_seed(4)
            return (
                r.faults_applied,
                r.crashes,
                r.jobs_completed,
                r.jobs_failed,
                r.command_retries,
                r.commands_rerouted,
                r.commands_abandoned,
                r.failovers,
                r.sim_time,
                tuple(r.violations),
            )

        assert run() == run()

    def test_sweep_report(self):
        report = ChaosRunner(num_jobs=4).sweep(seeds=2, base_seed=5)
        assert len(report.results) == 2
        assert [r.seed for r in report.results] == [5, 6]
        assert report.total_violations == 0
        assert report.ok
        text = report.format()
        assert "PASS" in text
        assert "seed" in text

    def test_runs_without_ha_pair(self):
        result = ChaosRunner(num_jobs=4, ha=False).run_seed(1)
        assert result.violations == []


class TestElasticitySweeps:
    def test_elasticity_seed_upholds_invariants(self):
        # Seed 5 draws a decommission, a kill, AND a join: the full
        # self-healing path runs under real workload + classic faults.
        result = ChaosRunner(num_jobs=5, elasticity=True).run_seed(5)
        assert result.violations == []
        assert result.kills >= 1
        assert result.joins >= 1
        assert result.repair_copies >= 1

    def test_elasticity_is_deterministic(self):
        def run():
            r = ChaosRunner(num_jobs=5, elasticity=True).run_seed(2)
            return (
                r.faults_applied,
                r.kills,
                r.joins,
                r.decommissions,
                r.repair_copies,
                r.jobs_completed,
                r.sim_time,
                tuple(r.violations),
            )

        assert run() == run()

    def test_flag_off_keeps_the_classic_sweep_identical(self):
        classic = ChaosRunner(num_jobs=4).run_seed(3)
        flagged = ChaosRunner(num_jobs=4, elasticity=False).run_seed(3)
        assert classic == flagged
        assert classic.kills == classic.joins == classic.decommissions == 0
