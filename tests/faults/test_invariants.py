"""InvariantChecker: clean runs pass, corrupted state is flagged."""

from repro.faults import (
    InvariantChecker,
    data_loss_violations,
    replication_violations,
)
from repro.storage import GB, MB
from tests.fixtures import make_ignem_cluster


def make_cluster(**kwargs):
    return make_ignem_cluster(buffer_capacity=1 * GB, **kwargs)


def migrated_cluster():
    cluster = make_cluster()
    cluster.rm.register_job("j1")
    cluster.client.create_file("/f", 256 * MB)
    cluster.ignem_master.request_migration(["/f"], "j1")
    cluster.run()
    return cluster


class TestCleanRun:
    def test_no_violations_on_a_healthy_cluster(self):
        cluster = migrated_cluster()
        assert InvariantChecker(cluster).check() == []

    def test_no_violations_after_eviction(self):
        cluster = migrated_cluster()
        cluster.ignem_master.request_eviction(["/f"], "j1")
        cluster.rm.unregister_job("j1")
        cluster.run()
        assert InvariantChecker(cluster).check() == []


class TestCorruptionDetection:
    def test_stale_memory_index_entry_is_flagged(self):
        cluster = migrated_cluster()
        block = cluster.namenode.file_blocks("/f")[0]
        holders = cluster.namenode.memory_nodes(block.block_id)
        ghost = next(
            name for name in cluster.node_names() if name not in holders
        )
        cluster.namenode.locality_index.update(ghost, block.block_id, True)
        violations = InvariantChecker(cluster).check_memory_index()
        assert any(block.block_id in v for v in violations)

    def test_dangling_reference_is_flagged(self):
        cluster = migrated_cluster()
        # The job vanishes from the scheduler without ever evicting: the
        # refs it left behind are exactly what III-A4's sweep hunts.
        cluster.rm.unregister_job("j1")
        violations = InvariantChecker(cluster).check_reference_lists()
        assert violations
        assert all("j1" in v for v in violations)

    def test_byte_accounting_mismatch_is_flagged(self):
        cluster = migrated_cluster()
        slave = next(
            s for s in cluster.ignem_master.slaves() if s.migrated_bytes > 0
        )
        slave.migrated_bytes += 10 * MB
        assert InvariantChecker(cluster).check_byte_accounting()


class TestDataLoss:
    def test_replication_one_files_are_exempt(self):
        cluster = make_cluster()
        cluster.client.create_file("/single", 64 * MB, replication=1)
        block = cluster.namenode.file_blocks("/single")[0]
        (holder,) = cluster.namenode.get_block_locations(block.block_id)
        cluster.fail_node(holder)
        assert data_loss_violations(cluster.namenode, {holder}, when=0.0) == []

    def test_losing_all_replicas_below_tolerance_is_flagged(self):
        cluster = make_cluster()
        cluster.client.create_file("/r2", 64 * MB)
        block = cluster.namenode.file_blocks("/r2")[0]
        # Simulate a bug: the location list empties although only one
        # node is down — a replication-2 file must survive that.
        cluster.namenode._locations[block.block_id].clear()
        violations = data_loss_violations(cluster.namenode, {"node0"}, when=1.0)
        assert any(block.block_id in v for v in violations)


class TestReplicationRestored:
    """A crash with no restart used to slip past the checker: every
    replica list kept >= 1 entry, so the data-loss invariant stayed
    quiet while blocks sat permanently under-replicated."""

    def test_permanent_loss_without_repair_is_convicted(self):
        cluster = make_cluster()  # no re-replication monitor
        cluster.client.create_file("/f", 128 * MB)
        holder = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(holder)
        cluster.run()
        violations = InvariantChecker(cluster).check()
        assert any("under-replication" in v for v in violations)

    def test_self_healing_clears_the_conviction(self):
        cluster = make_cluster(rereplication=True)
        cluster.client.create_file("/f", 128 * MB)
        holder = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(holder)
        cluster.run()
        assert InvariantChecker(cluster).check() == []

    def test_duplicate_holder_is_convicted(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        holders = cluster.namenode._locations[block.block_id]
        holders.append(holders[0])
        violations = replication_violations(cluster.namenode, when=1.0)
        assert any("twice" in v for v in violations)

    def test_target_is_capped_by_live_nodes(self):
        # Killing down to fewer nodes than the replication factor is not
        # the repair machinery's fault: no conviction below the cap.
        cluster = make_cluster(num_nodes=2, rereplication=True)
        cluster.client.create_file("/f", 64 * MB)
        cluster.fail_node("node1")
        cluster.run()
        assert replication_violations(cluster.namenode, when=1.0) == []
