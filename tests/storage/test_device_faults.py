"""TransferDevice fault surface: bandwidth changes and host death."""

import pytest

from repro.sim import Environment
from repro.storage.device import TransferDevice, no_penalty


class HostDied(Exception):
    pass


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def device(env):
    return TransferDevice(env, "disk", bandwidth=100.0, penalty=no_penalty)


class TestSetBandwidth:
    def test_mid_transfer_change_reschedules(self, env, device):
        finished = []

        def reader(env):
            yield device.transfer(100.0)
            finished.append(env.now)

        def throttle(env):
            yield env.timeout(0.5)
            device.set_bandwidth(50.0)

        env.process(reader(env), name="reader")
        env.process(throttle(env), name="throttle")
        env.run()
        # 50 bytes at 100 B/s, then the remaining 50 at 50 B/s.
        assert finished == [pytest.approx(1.5)]
        assert device.bandwidth == 50.0

    def test_restoring_bandwidth_speeds_back_up(self, env, device):
        finished = []

        def reader(env):
            yield device.transfer(100.0)
            finished.append(env.now)

        def wobble(env):
            yield env.timeout(0.25)
            device.set_bandwidth(25.0)
            yield env.timeout(1.0)
            device.set_bandwidth(100.0)

        env.process(reader(env), name="reader")
        env.process(wobble(env), name="wobble")
        env.run()
        # 25B fast + 25B slow + 50B fast = 0.25 + 1.0 + 0.5 seconds.
        assert finished == [pytest.approx(1.75)]

    def test_rejects_non_positive_bandwidth(self, device):
        with pytest.raises(ValueError):
            device.set_bandwidth(0.0)


class TestFailAll:
    def test_waiters_see_the_error(self, env, device):
        outcomes = []

        def reader(env, nbytes):
            try:
                yield device.transfer(nbytes)
                outcomes.append("done")
            except HostDied:
                outcomes.append(env.now)

        def killer(env):
            yield env.timeout(0.5)
            assert device.fail_all(HostDied("host down")) == 2

        env.process(reader(env, 100.0), name="r1")
        env.process(reader(env, 200.0), name="r2")
        env.process(killer(env), name="killer")
        env.run()
        assert outcomes == [0.5, 0.5]

    def test_device_serves_new_transfers_after_failure(self, env, device):
        finished = []

        def story(env):
            doomed = device.transfer(100.0)
            yield env.timeout(0.1)
            device.fail_all(HostDied("down"))
            try:
                yield doomed
            except HostDied:
                pass
            yield device.transfer(50.0)
            finished.append(env.now)

        env.process(story(env), name="story")
        env.run()
        assert finished == [pytest.approx(0.1 + 0.5)]

    def test_unwaited_failed_transfer_does_not_crash_the_engine(self, env, device):
        """A transfer whose waiter was interrupted in the same host
        failure leaves a callback-less failed event; fail_all must sink
        it instead of letting the engine raise it as unhandled."""

        def orphan(env):
            yield env.timeout(10.0)  # parked; never waits on the transfer

        device.transfer(100.0)
        env.process(orphan(env), name="orphan")

        def killer(env):
            yield env.timeout(0.5)
            device.fail_all(HostDied("down"))

        env.process(killer(env), name="killer")
        env.run()  # must not raise HostDied

    def test_fail_all_on_idle_device_is_a_no_op(self, device):
        assert device.fail_all(HostDied("down")) == 0
