"""Tests for the buffer cache (page cache + mlock pinning + write-back)."""

import pytest

from repro.sim import Environment
from repro.storage import MB, BufferCache, TransferDevice


def make_cache(capacity=100 * MB, flush_device=None):
    env = Environment()
    return env, BufferCache(env, capacity=capacity, flush_device=flush_device)


class TestResidency:
    def test_insert_and_contains(self):
        env, cache = make_cache()
        assert cache.insert("a", 10 * MB)
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_does_not_count(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        assert cache.peek("a")
        assert not cache.peek("b")
        assert cache.hits == 0
        assert cache.misses == 0

    def test_used_bytes_tracks_inserts(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        cache.insert("b", 20 * MB)
        assert cache.used_bytes == 30 * MB
        assert cache.free_bytes == 70 * MB

    def test_duplicate_insert_does_not_double_count(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        cache.insert("a", 10 * MB)
        assert cache.used_bytes == 10 * MB

    def test_negative_size_rejected(self):
        env, cache = make_cache()
        with pytest.raises(ValueError):
            cache.insert("a", -1)

    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            BufferCache(env, capacity=0)


class TestEviction:
    def test_lru_eviction_on_pressure(self):
        env, cache = make_cache(capacity=30 * MB)
        cache.insert("old", 10 * MB)
        cache.insert("mid", 10 * MB)
        cache.insert("new", 10 * MB)
        cache.insert("newest", 10 * MB)  # evicts "old"
        assert not cache.peek("old")
        assert cache.peek("mid")
        assert cache.peek("newest")
        assert cache.evictions == 1

    def test_contains_refreshes_lru_position(self):
        env, cache = make_cache(capacity=30 * MB)
        cache.insert("a", 10 * MB)
        cache.insert("b", 10 * MB)
        cache.insert("c", 10 * MB)
        cache.contains("a")  # refresh a
        cache.insert("d", 10 * MB)  # evicts b, not a
        assert cache.peek("a")
        assert not cache.peek("b")

    def test_pinned_entries_never_evicted_by_pressure(self):
        env, cache = make_cache(capacity=30 * MB)
        cache.insert("pinned", 10 * MB, pinned=True)
        cache.insert("a", 10 * MB)
        cache.insert("b", 10 * MB)
        cache.insert("c", 10 * MB)  # must evict a (LRU unpinned)
        assert cache.peek("pinned")
        assert not cache.peek("a")

    def test_insert_too_large_to_ever_fit_fails(self):
        env, cache = make_cache(capacity=30 * MB)
        assert not cache.insert("huge", 40 * MB)
        assert cache.used_bytes == 0

    def test_insert_fails_when_pins_block_room(self):
        env, cache = make_cache(capacity=30 * MB)
        cache.insert("p1", 15 * MB, pinned=True)
        cache.insert("p2", 15 * MB, pinned=True)
        assert not cache.insert("x", 10 * MB)

    def test_explicit_evict(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        assert cache.evict("a")
        assert not cache.peek("a")
        assert cache.used_bytes == 0
        assert not cache.evict("a")

    def test_flush_all_clears_everything_even_pinned(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB, pinned=True)
        cache.insert("b", 10 * MB)
        cache.flush_all()
        assert cache.used_bytes == 0
        assert cache.pinned_bytes == 0


class TestPinning:
    def test_pin_and_unpin_track_bytes(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        assert cache.pin("a")
        assert cache.pinned_bytes == 10 * MB
        assert cache.is_pinned("a")
        assert cache.unpin("a")
        assert cache.pinned_bytes == 0
        assert not cache.is_pinned("a")

    def test_pin_absent_key_fails(self):
        env, cache = make_cache()
        assert not cache.pin("ghost")
        assert not cache.unpin("ghost")

    def test_double_pin_is_idempotent(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        cache.pin("a")
        cache.pin("a")
        assert cache.pinned_bytes == 10 * MB

    def test_insert_pinned_then_evict_releases_pin_bytes(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB, pinned=True)
        cache.evict("a")
        assert cache.pinned_bytes == 0

    def test_insert_existing_with_pin_upgrades(self):
        env, cache = make_cache()
        cache.insert("a", 10 * MB)
        cache.insert("a", 10 * MB, pinned=True)
        assert cache.is_pinned("a")
        assert cache.pinned_bytes == 10 * MB


class TestWriteBack:
    def test_write_absorb_without_device_is_instant(self):
        env, cache = make_cache()
        cache.write_absorb("out", 10 * MB)
        assert cache.peek("out")
        assert cache.dirty_bytes == 0

    def test_write_back_drains_dirty_bytes_through_device(self):
        env = Environment()
        disk = TransferDevice(env, "hdd", bandwidth=100 * MB)
        cache = BufferCache(env, capacity=1000 * MB, flush_device=disk)
        cache.write_absorb("out", 200 * MB)
        assert cache.dirty_bytes == 200 * MB
        env.run()
        assert cache.dirty_bytes == 0
        assert disk.bytes_moved == pytest.approx(200 * MB)
        # 200MB at 100MB/s -> 2 seconds of flushing.
        assert env.now == pytest.approx(2.0)

    def test_write_back_contends_with_foreground_reads(self):
        env = Environment()
        disk = TransferDevice(env, "hdd", bandwidth=100 * MB)
        cache = BufferCache(env, capacity=1000 * MB, flush_device=disk)
        ends = {}

        def writer(env):
            yield env.timeout(0)
            cache.write_absorb("out", 100 * MB)

        def reader(env):
            yield disk.transfer(100 * MB)
            ends["read"] = env.now

        env.process(writer(env))
        env.process(reader(env))
        env.run()
        # Reader shares the disk with the flusher, so it takes >1s.
        assert ends["read"] > 1.0

    def test_multiple_writes_accumulate_dirty_bytes(self):
        env = Environment()
        disk = TransferDevice(env, "hdd", bandwidth=100 * MB)
        cache = BufferCache(env, capacity=1000 * MB, flush_device=disk)
        cache.write_absorb("a", 50 * MB)
        cache.write_absorb("b", 50 * MB)
        env.run()
        assert disk.bytes_moved == pytest.approx(100 * MB)
