"""Tests for the processor-sharing transfer device."""

import pytest

from repro.sim import Environment
from repro.storage import (
    MB,
    TransferDevice,
    no_penalty,
    seek_thrash_penalty,
)


def run_transfer(env, device, nbytes):
    """Helper: run one transfer to completion, return (start, end)."""
    times = {}

    def proc(env):
        times["start"] = env.now
        yield device.transfer(nbytes)
        times["end"] = env.now

    env.process(proc(env))
    env.run()
    return times["start"], times["end"]


class TestSingleTransfer:
    def test_duration_matches_bandwidth(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        start, end = run_transfer(env, device, 200 * MB)
        assert end - start == pytest.approx(2.0)

    def test_latency_added_once(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB, latency=0.5)
        start, end = run_transfer(env, device, 100 * MB)
        assert end - start == pytest.approx(1.5)

    def test_zero_byte_transfer_completes(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB, latency=0.25)
        start, end = run_transfer(env, device, 0)
        assert end - start == pytest.approx(0.25)

    def test_negative_bytes_rejected(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        with pytest.raises(ValueError):
            device.transfer(-1)

    def test_invalid_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            TransferDevice(env, "d", bandwidth=0)

    def test_invalid_latency_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            TransferDevice(env, "d", bandwidth=1, latency=-1)


class TestProcessorSharing:
    def test_two_equal_transfers_share_bandwidth(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        ends = []

        def proc(env):
            yield device.transfer(100 * MB)
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        # Two 1-second transfers sharing fairly finish together at t=2.
        assert ends == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_short_transfer_finishes_first_then_long_speeds_up(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        ends = {}

        def proc(env, name, nbytes):
            yield device.transfer(nbytes)
            ends[name] = env.now

        env.process(proc(env, "short", 50 * MB))
        env.process(proc(env, "long", 150 * MB))
        env.run()
        # Shared until short has its 50MB at t=1 (25MB/s... no: 50MB/s each).
        # each gets 50MB/s: short done at t=1 with long at 50MB moved;
        # long then gets 100MB/s for remaining 100MB -> done t=2.
        assert ends["short"] == pytest.approx(1.0)
        assert ends["long"] == pytest.approx(2.0)

    def test_late_arrival_slows_existing_transfer(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        ends = {}

        def first(env):
            yield device.transfer(100 * MB)
            ends["first"] = env.now

        def second(env):
            yield env.timeout(0.5)
            yield device.transfer(100 * MB)
            ends["second"] = env.now

        env.process(first(env))
        env.process(second(env))
        env.run()
        # First does 50MB alone in 0.5s; then both share: each at 50MB/s.
        # First's remaining 50MB takes 1s -> t=1.5.
        assert ends["first"] == pytest.approx(1.5)
        # Second then alone: had 50MB in the shared 1s, 50MB left at
        # 100MB/s -> t=2.0.
        assert ends["second"] == pytest.approx(2.0)

    def test_conservation_of_bytes(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        total = 0.0

        def proc(env, nbytes, delay):
            yield env.timeout(delay)
            yield device.transfer(nbytes)

        for index in range(10):
            nbytes = (index + 1) * 10 * MB
            total += nbytes
            env.process(proc(env, nbytes, delay=index * 0.3))
        env.run()
        assert device.bytes_moved == pytest.approx(total, rel=1e-6)


class TestConcurrencyPenalty:
    def test_no_penalty_keeps_aggregate_constant(self):
        penalty = no_penalty
        assert penalty(1) == 1.0
        assert penalty(100) == 1.0

    def test_seek_thrash_formula(self):
        penalty = seek_thrash_penalty(0.5)
        assert penalty(1) == 1.0
        assert penalty(2) == pytest.approx(1 / 1.5)
        assert penalty(3) == pytest.approx(1 / 2.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            seek_thrash_penalty(-0.1)

    def test_concurrent_hdd_transfers_are_collectively_slower(self):
        """Two concurrent reads take longer than the same reads in series."""

        def total_time(concurrent):
            env = Environment()
            device = TransferDevice(
                env,
                "hdd",
                bandwidth=100 * MB,
                penalty=seek_thrash_penalty(1.0),
            )

            def reader(env, delay):
                yield env.timeout(delay)
                yield device.transfer(100 * MB)

            if concurrent:
                env.process(reader(env, 0))
                env.process(reader(env, 0))
            else:

                def serial(env):
                    yield device.transfer(100 * MB)
                    yield device.transfer(100 * MB)

                env.process(serial(env))
            env.run()
            return env.now

        assert total_time(concurrent=True) > total_time(concurrent=False)

    def test_single_stream_unaffected_by_penalty(self):
        env = Environment()
        device = TransferDevice(
            env, "hdd", bandwidth=100 * MB, penalty=seek_thrash_penalty(2.0)
        )
        start, end = run_transfer(env, device, 100 * MB)
        assert end - start == pytest.approx(1.0)


class TestCancel:
    def test_cancel_frees_bandwidth(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        ends = {}

        def victim(env):
            done = device.transfer(1000 * MB)
            yield env.timeout(1.0)
            assert device.cancel(done)
            ends["victim-cancelled"] = env.now

        def survivor(env):
            yield device.transfer(150 * MB)
            ends["survivor"] = env.now

        env.process(victim(env))
        env.process(survivor(env))
        env.run()
        # Shared 50MB/s for 1s -> survivor at 50MB; after cancel it gets
        # 100MB/s for remaining 100MB -> t=2.0.
        assert ends["survivor"] == pytest.approx(2.0)

    def test_cancel_unknown_event_returns_false(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        assert device.cancel(env.event()) is False


class TestInstrumentation:
    def test_busy_time_only_counts_active_periods(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)

        def proc(env):
            yield device.transfer(100 * MB)  # 1s busy
            yield env.timeout(5)  # idle
            yield device.transfer(100 * MB)  # 1s busy

        env.process(proc(env))
        env.run()
        assert device.busy_time == pytest.approx(2.0)

    def test_current_rate_and_aggregate_rate(self):
        env = Environment()
        device = TransferDevice(
            env, "d", bandwidth=100 * MB, penalty=seek_thrash_penalty(1.0)
        )
        observed = {}

        def reader(env):
            device.transfer(1000 * MB)
            device.transfer(1000 * MB)
            yield env.timeout(0.1)
            observed["per_stream"] = device.current_rate()
            observed["aggregate"] = device.aggregate_rate()

        env.process(reader(env))
        env.run(until=0.2)
        # n=2, penalty 1/2 -> aggregate 50MB/s, 25MB/s per stream.
        assert observed["aggregate"] == pytest.approx(50 * MB)
        assert observed["per_stream"] == pytest.approx(25 * MB)

    def test_idle_rates_are_zero(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB)
        assert device.current_rate() == 0.0
        assert device.aggregate_rate() == 0.0

    def test_estimate_time_includes_latency(self):
        env = Environment()
        device = TransferDevice(env, "d", bandwidth=100 * MB, latency=0.5)
        assert device.estimate_time(100 * MB) == pytest.approx(1.5)
