"""Shrinker: greedy minimization is minimal, deterministic, budgeted.

These tests use pure predicates over the scenario structure — no
simulation — so they pin the shrinking algebra itself.
"""

from repro.dst import Scenario, ScenarioJob, shrink_scenario
from repro.dst.shrinker import (
    MAX_ATTEMPTS,
    _candidates,
    _with_fewer_nodes,
    describe_shrink,
)
from repro.faults import FaultEvent
from repro.storage import GB, MB


def job(name, arrival):
    return ScenarioJob(
        name=name,
        kind="swim",
        input_path=f"/dst/{name}",
        input_bytes=64 * MB,
        arrival=arrival,
    )


def big_scenario(**overrides):
    fields = dict(
        seed=9,
        num_nodes=4,
        replication=2,
        slots_per_node=2,
        block_size=64 * MB,
        buffer_capacity=1 * GB,
        policy="smallest-job-first",
        ha=True,
        implicit_eviction=True,
        jobs=(
            job("keep", 0.0),
            job("j1", 1.0),
            job("j2", 2.0),
            job("j3", 3.0),
        ),
        faults=(
            FaultEvent(1.0, "crash", "node0"),
            FaultEvent(2.0, "slow_disk_start", "node1", 0.5),
            FaultEvent(3.0, "restart", "node0"),
        ),
    )
    fields.update(overrides)
    return Scenario(**fields)


def needs_keep_and_crash(scenario):
    return any(j.name == "keep" for j in scenario.jobs) and any(
        f.kind == "crash" for f in scenario.faults
    )


class TestShrinking:
    def test_reaches_the_minimal_failing_scenario(self):
        shrunk, attempts = shrink_scenario(
            big_scenario(), needs_keep_and_crash
        )
        assert [j.name for j in shrunk.jobs] == ["keep"]
        assert [f.kind for f in shrunk.faults] == ["crash"]
        assert shrunk.num_nodes == 2
        assert shrunk.ha is False
        assert 0 < attempts <= MAX_ATTEMPTS

    def test_result_is_one_minimal(self):
        shrunk, _ = shrink_scenario(big_scenario(), needs_keep_and_crash)
        # No single further shrink step still fails: a fixed point.
        assert all(
            not needs_keep_and_crash(candidate)
            for candidate in _candidates(shrunk)
        )

    def test_shrinking_is_deterministic(self):
        first, n1 = shrink_scenario(big_scenario(), needs_keep_and_crash)
        second, n2 = shrink_scenario(big_scenario(), needs_keep_and_crash)
        assert first.to_json() == second.to_json()
        assert n1 == n2

    def test_replication_clamped_when_nodes_shrink(self):
        scenario = big_scenario(replication=4, faults=())
        shrunk, _ = shrink_scenario(
            scenario, lambda s: any(j.name == "keep" for j in s.jobs)
        )
        assert shrunk.num_nodes == 2
        assert shrunk.replication <= shrunk.num_nodes

    def test_faults_on_removed_nodes_are_dropped_with_them(self):
        scenario = big_scenario(
            faults=(
                FaultEvent(1.0, "crash", "node0"),
                FaultEvent(2.0, "crash", "node3"),
            )
        )
        candidate = _with_fewer_nodes(scenario)
        # node3 left the cluster, so its crash goes with it; node0's stays.
        assert candidate.num_nodes == 3
        assert [f.target for f in candidate.faults] == ["node0"]

    def test_crashing_candidates_count_as_not_failing(self):
        def fails_unless_candidate_breaks(scenario):
            if not scenario.ha:
                raise RuntimeError("harness blew up on this candidate")
            return True

        shrunk, _ = shrink_scenario(
            big_scenario(), fails_unless_candidate_breaks
        )
        # Everything else shrinks away, but the exploding no-HA
        # candidate is treated as not-reproducing, so HA survives.
        assert shrunk.ha is True
        assert len(shrunk.jobs) == 1
        assert shrunk.faults == ()

    def test_attempt_budget_is_respected(self):
        _, attempts = shrink_scenario(
            big_scenario(), lambda s: True, max_attempts=3
        )
        assert attempts == 3


class TestDescribe:
    def test_no_change_is_already_minimal(self):
        scenario = big_scenario()
        assert describe_shrink(scenario, scenario) == "already minimal"

    def test_reports_every_shrunk_axis(self):
        original = big_scenario()
        shrunk, _ = shrink_scenario(original, needs_keep_and_crash)
        note = describe_shrink(original, shrunk)
        assert "jobs 4->1" in note
        assert "faults 3->1" in note
        assert "nodes 4->2" in note
        assert "ha dropped" in note
