"""Scenario objects: validation, canonical serialization, generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dst import Scenario, ScenarioGenerator, ScenarioJob
from repro.faults import FaultEvent
from repro.faults.schedule import FAULT_KINDS
from repro.storage import GB, MB
from tests.strategies import fault_events


def tiny_scenario(**overrides):
    fields = dict(
        seed=1,
        num_nodes=2,
        replication=1,
        slots_per_node=2,
        block_size=64 * MB,
        buffer_capacity=1 * GB,
        policy="smallest-job-first",
        ha=False,
        implicit_eviction=True,
        jobs=(
            ScenarioJob(
                name="j0",
                kind="swim",
                input_path="/dst/in",
                input_bytes=64 * MB,
                arrival=0.0,
            ),
        ),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestValidation:
    def test_needs_at_least_one_job(self):
        with pytest.raises(ValueError):
            tiny_scenario(jobs=())

    def test_replication_bounded_by_nodes(self):
        with pytest.raises(ValueError):
            tiny_scenario(replication=3)

    def test_num_nodes_positive(self):
        with pytest.raises(ValueError):
            tiny_scenario(num_nodes=0)

    def test_job_kind_checked(self):
        with pytest.raises(ValueError):
            ScenarioJob(
                name="j",
                kind="terasort",
                input_path="/p",
                input_bytes=1.0,
                arrival=0.0,
            )

    def test_job_arrival_non_negative(self):
        with pytest.raises(ValueError):
            ScenarioJob(
                name="j",
                kind="swim",
                input_path="/p",
                input_bytes=1.0,
                arrival=-1.0,
            )

    def test_faults_are_normalized_sorted(self):
        scenario = tiny_scenario(
            faults=(
                FaultEvent(5.0, "restart", "node0"),
                FaultEvent(1.0, "crash", "node0"),
            )
        )
        assert [e.time for e in scenario.faults] == [1.0, 5.0]


class TestSerialization:
    def test_json_round_trip_is_byte_identical(self):
        scenario = tiny_scenario(
            faults=(FaultEvent(1.0, "crash", "node0"),), ha=False
        )
        text = scenario.to_json()
        assert Scenario.from_json(text).to_json() == text

    def test_save_load_round_trip(self, tmp_path):
        scenario = tiny_scenario()
        path = scenario.save(tmp_path / "s.json")
        loaded = Scenario.load(path)
        assert loaded == scenario
        assert loaded.to_json() == path.read_text()

    def test_unknown_format_version_rejected(self):
        data = tiny_scenario().to_dict()
        data["format_version"] = 99
        with pytest.raises(ValueError):
            Scenario.from_dict(data)

    def test_do_not_harm_defaults_true(self):
        data = tiny_scenario().to_dict()
        del data["do_not_harm"]
        assert Scenario.from_dict(data).do_not_harm is True

    def test_shared_input_files_keep_largest_size(self):
        job = tiny_scenario().jobs[0]
        bigger = ScenarioJob(
            name="j1",
            kind="wordcount",
            input_path=job.input_path,
            input_bytes=job.input_bytes * 2,
            arrival=1.0,
        )
        scenario = tiny_scenario(jobs=(job, bigger))
        assert scenario.input_files() == {
            job.input_path: bigger.input_bytes
        }


class TestGenerator:
    def test_same_seed_and_index_is_byte_identical(self):
        first = ScenarioGenerator(seed=7).generate(3)
        second = ScenarioGenerator(seed=7).generate(3)
        assert first.to_json() == second.to_json()

    def test_different_indices_differ(self):
        generator = ScenarioGenerator(seed=7)
        assert generator.generate(0).to_json() != generator.generate(1).to_json()

    def test_generation_is_index_independent(self):
        # Scenario i is a pure function of (seed, i): generating 0 first
        # must not perturb 5.
        alone = ScenarioGenerator(seed=3).generate(5)
        generator = ScenarioGenerator(seed=3)
        for index in range(5):
            generator.generate(index)
        assert generator.generate(5).to_json() == alone.to_json()

    def test_sampled_scenarios_are_well_formed(self):
        generator = ScenarioGenerator(seed=0)
        for index in range(20):
            scenario = generator.generate(index)
            assert 2 <= scenario.num_nodes <= 6
            assert 1 <= scenario.replication <= min(3, scenario.num_nodes)
            assert 128 * MB <= scenario.buffer_capacity <= 4 * GB
            assert scenario.policy in ("smallest-job-first", "fifo")
            assert scenario.jobs
            names = {f"node{i}" for i in range(scenario.num_nodes)}
            for event in scenario.faults:
                assert event.kind in FAULT_KINDS
                assert event.target is None or event.target in names
            # The canonical form survives a round trip.
            assert (
                Scenario.from_json(scenario.to_json()).to_json()
                == scenario.to_json()
            )

    @given(st.lists(fault_events(num_nodes=2), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_any_fault_plan_round_trips_canonically(self, faults):
        scenario = tiny_scenario(faults=tuple(faults))
        text = scenario.to_json()
        assert Scenario.from_json(text).to_json() == text

    def test_mix_includes_clean_and_faulty_runs(self):
        generator = ScenarioGenerator(seed=0)
        fault_counts = [len(generator.generate(i).faults) for i in range(20)]
        assert any(n == 0 for n in fault_counts)
        assert any(n > 0 for n in fault_counts)


class TestGeneratorElasticity:
    def test_flag_off_is_byte_identical_to_the_old_generator(self):
        # The corpus (and every historical fuzz seed) must stay canonical
        # with elasticity left at its default.
        for index in range(10):
            old = ScenarioGenerator(seed=4).generate(index)
            flagged = ScenarioGenerator(seed=4, elasticity=False).generate(
                index
            )
            assert old.to_json() == flagged.to_json()

    def test_flag_on_only_appends_membership_faults(self):
        elastic_kinds = ("kill", "join", "decommission")
        saw_elastic = False
        for index in range(20):
            classic = ScenarioGenerator(seed=4).generate(index)
            elastic = ScenarioGenerator(seed=4, elasticity=True).generate(
                index
            )
            kept = tuple(
                e for e in elastic.faults if e.kind not in elastic_kinds
            )
            assert kept == classic.faults
            saw_elastic = saw_elastic or len(elastic.faults) > len(
                classic.faults
            )
        assert saw_elastic

    def test_elastic_scenarios_are_deterministic(self):
        first = ScenarioGenerator(seed=9, elasticity=True).generate(2)
        second = ScenarioGenerator(seed=9, elasticity=True).generate(2)
        assert first.to_json() == second.to_json()
