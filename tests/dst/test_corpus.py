"""Regression corpus replay: every saved scenario must stay green.

``tests/dst/corpus/`` holds minimal scenarios that once exposed (or
deliberately exercise) interesting behavior.  ``python -m repro dst
--replay tests/dst/corpus`` runs the same check from the CLI; this file
is the pytest-native twin, so a plain test run covers the corpus too.
"""

import pathlib

from repro.dst import DstRunner, Scenario, corpus_paths, run_scenario

CORPUS = pathlib.Path(__file__).parent / "corpus"


def test_corpus_is_not_empty():
    assert len(corpus_paths(CORPUS)) >= 2


class TestKillDuringMigrationSeed:
    """PR 7 self-healing replication: a node is killed permanently
    while it holds the sole high-tier (migrated) replica of in-flight
    blocks, then a fresh node joins.  The monitor must re-replicate
    every lost replica — zero lost blocks, replication factor restored
    — and each interrupted migration either completes elsewhere or is
    cleanly abandoned (the ignem oracles judge that part)."""

    def test_kill_is_repaired_and_join_restores_replication(self):
        scenario = Scenario.load(CORPUS / "kill-during-migration.json")
        assert [e.kind for e in scenario.faults] == ["kill", "join"]
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["faults_applied"] == len(scenario.faults)
        assert result.stats["nodes_joined"] == 1
        # The kill lands mid-migration: not every started migration
        # completes, and every replica the dead node held is copied
        # back out (the replication oracle convicts any shortfall).
        assert result.stats["migrations_completed"] >= 1
        assert result.stats["repair_copies"] >= 1
        assert result.stats["jobs_completed"] == len(scenario.jobs)

    def test_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "kill-during-migration.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations


def test_every_corpus_scenario_replays_clean():
    runner = DstRunner(seed=0)
    report = runner.replay(corpus_paths(CORPUS))
    assert report.scenarios_run == len(corpus_paths(CORPUS))
    assert report.ok, report.format()


def test_corpus_files_are_canonical():
    # Byte-identity keeps diffs reviewable: re-serializing a corpus
    # file must be a no-op.
    for path in corpus_paths(CORPUS):
        assert Scenario.load(path).to_json() == path.read_text(), path


class TestRetryFailoverSeed:
    """PR 2 command retry/backoff under concurrent slave crash and
    master failover, pinned as a hand-written corpus scenario."""

    def test_retries_reroutes_and_abandons_all_exercised(self):
        scenario = Scenario.load(CORPUS / "retry-failover.json")
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["command_retries"] >= 1
        assert result.stats["commands_rerouted"] >= 1
        assert result.stats["commands_abandoned"] >= 1
        assert result.stats["faults_applied"] == len(scenario.faults)

    def test_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "retry-failover.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations


class TestThreeTierSeed:
    """PR 5 tier axis: the mem-ssd-hdd preset with migrations routed to
    the SSD tier, surviving a slave crash mid-run."""

    def test_three_tier_preset_survives_slave_crash(self):
        scenario = Scenario.load(CORPUS / "three-tier.json")
        assert scenario.tier_preset == "mem-ssd-hdd"
        assert scenario.migration_tier == "ssd"
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["faults_applied"] == len(scenario.faults)
        assert result.stats["migrations_completed"] >= 1
        assert result.stats["jobs_completed"] == len(scenario.jobs)

    def test_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "three-tier.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations
