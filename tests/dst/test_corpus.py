"""Regression corpus replay: every saved scenario must stay green.

``tests/dst/corpus/`` holds minimal scenarios that once exposed (or
deliberately exercise) interesting behavior.  ``python -m repro dst
--replay tests/dst/corpus`` runs the same check from the CLI; this file
is the pytest-native twin, so a plain test run covers the corpus too.
"""

import pathlib

from repro.dst import DstRunner, Scenario, corpus_paths, run_scenario

CORPUS = pathlib.Path(__file__).parent / "corpus"


def test_corpus_is_not_empty():
    assert len(corpus_paths(CORPUS)) >= 2


def test_every_corpus_scenario_replays_clean():
    runner = DstRunner(seed=0)
    report = runner.replay(corpus_paths(CORPUS))
    assert report.scenarios_run == len(corpus_paths(CORPUS))
    assert report.ok, report.format()


def test_corpus_files_are_canonical():
    # Byte-identity keeps diffs reviewable: re-serializing a corpus
    # file must be a no-op.
    for path in corpus_paths(CORPUS):
        assert Scenario.load(path).to_json() == path.read_text(), path


class TestRetryFailoverSeed:
    """PR 2 command retry/backoff under concurrent slave crash and
    master failover, pinned as a hand-written corpus scenario."""

    def test_retries_reroutes_and_abandons_all_exercised(self):
        scenario = Scenario.load(CORPUS / "retry-failover.json")
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["command_retries"] >= 1
        assert result.stats["commands_rerouted"] >= 1
        assert result.stats["commands_abandoned"] >= 1
        assert result.stats["faults_applied"] == len(scenario.faults)

    def test_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "retry-failover.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations


class TestThreeTierSeed:
    """PR 5 tier axis: the mem-ssd-hdd preset with migrations routed to
    the SSD tier, surviving a slave crash mid-run."""

    def test_three_tier_preset_survives_slave_crash(self):
        scenario = Scenario.load(CORPUS / "three-tier.json")
        assert scenario.tier_preset == "mem-ssd-hdd"
        assert scenario.migration_tier == "ssd"
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["faults_applied"] == len(scenario.faults)
        assert result.stats["migrations_completed"] >= 1
        assert result.stats["jobs_completed"] == len(scenario.jobs)

    def test_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "three-tier.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations
