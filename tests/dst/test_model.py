"""Reference model unit tests: priority spec + synthetic trace replays.

Each replay case hand-builds the two inputs the differential checker
sees in production — the command-boundary delivery log and the parsed
``ignem.migration`` trace events — and asserts exactly which violations
the worker simulation raises.
"""

from repro.dst import DifferentialChecker, reference_priority
from repro.dst.model import DeliveredItem
from repro.storage import MB

import pytest

NODE = "node0"
TID = 7
LANES = {TID: NODE}


class TestReferencePriority:
    def test_smaller_job_migrates_first(self):
        small = reference_priority("smallest-job-first", 10.0, 5.0, 0)
        big = reference_priority("smallest-job-first", 20.0, 1.0, 0)
        assert small < big

    def test_size_ties_break_by_submission_time(self):
        early = reference_priority("smallest-job-first", 10.0, 1.0, 0)
        late = reference_priority("smallest-job-first", 10.0, 2.0, 0)
        assert early < late

    def test_within_a_job_tail_first(self):
        tail = reference_priority("smallest-job-first", 10.0, 1.0, 9)
        head = reference_priority("smallest-job-first", 10.0, 1.0, 0)
        assert tail < head

    def test_fifo_ignores_job_size(self):
        early_big = reference_priority("fifo", 100.0, 1.0, 0)
        late_small = reference_priority("fifo", 1.0, 2.0, 0)
        assert early_big < late_small

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            reference_priority("round-robin", 1.0, 1.0, 0)


def item(time, job, block, *, size=64 * MB, submitted=0.0, hint=0, seq=0):
    return DeliveredItem(
        time=time,
        node=NODE,
        job_id=job,
        block_id=block,
        nbytes=size,
        priority=reference_priority(
            "smallest-job-first", size, submitted, hint
        ),
        seq=seq,
    )


def span(t_start, dur, job, block, queue_wait, outcome="completed"):
    """A completed-migration span, as the tracer emits it."""
    return {
        "name": "ignem.migration",
        "ph": "X",
        "ts": t_start * 1e6,
        "dur": dur * 1e6,
        "tid": TID,
        "args": {
            "job": job,
            "block": block,
            "outcome": outcome,
            "queue_wait": queue_wait,
        },
    }


def instant(t, job, block, queue_wait, outcome):
    """A non-migrating pop (dropped/skipped), an instant event."""
    return {
        "name": "ignem.migration",
        "ph": "i",
        "ts": t * 1e6,
        "tid": TID,
        "args": {
            "job": job,
            "block": block,
            "outcome": outcome,
            "queue_wait": queue_wait,
        },
    }


def replay(delivered, events, purges=()):
    checker = DifferentialChecker("smallest-job-first")
    checker.delivered.extend(delivered)
    return checker.replay(events, LANES, list(purges))


class TestCleanReplays:
    def test_priority_order_with_busy_worker(self):
        # A arrives alone and occupies the worker; B and C queue behind
        # it and must drain smallest-job-first (C before B).
        delivered = [
            item(1.0, "jA", "blkA", size=64 * MB, seq=0),
            item(1.5, "jB", "blkB", size=256 * MB, submitted=0.5, seq=1),
            item(1.5, "jC", "blkC", size=32 * MB, submitted=1.0, seq=2),
        ]
        events = [
            span(1.0, 2.0, "jA", "blkA", 0.0),
            span(3.0, 1.0, "jC", "blkC", 1.5),
            span(4.0, 1.0, "jB", "blkB", 2.5),
        ]
        assert replay(delivered, events) == []

    def test_idle_worker_takes_first_item_in_command_order(self):
        # Store.put_nowait hands items[0] straight to the parked getter,
        # bypassing priority: the big block migrating first is correct
        # behavior, not an ordering bug.
        delivered = [
            item(1.0, "jBig", "blkBig", size=512 * MB, seq=0),
            item(1.0, "jSmall", "blkSmall", size=16 * MB, seq=1),
        ]
        events = [
            span(1.0, 2.0, "jBig", "blkBig", 0.0),
            span(3.0, 1.0, "jSmall", "blkSmall", 2.0),
        ]
        assert replay(delivered, events) == []

    def test_redelivery_of_resident_block_is_dropped_silently(self):
        # blk1 migrates for job1; a later delivery for job2 finds it
        # resident and must vanish without a pop.
        delivered = [
            item(1.0, "job1", "blk1", seq=0),
            item(5.0, "job2", "blk1", submitted=2.0, seq=1),
        ]
        events = [span(1.0, 1.0, "job1", "blk1", 0.0)]
        assert replay(delivered, events) == []

    def test_purge_clears_the_queue(self):
        # B is queued behind A when the purge (crash) hits: the model
        # must not demand a pop for it.
        delivered = [
            item(1.0, "jA", "blkA", seq=0),
            item(1.2, "jB", "blkB", seq=1),
        ]
        events = [span(1.0, 2.0, "jA", "blkA", 0.0)]
        assert replay(delivered, events, purges=[(1.5, NODE)]) == []

    def test_non_migrating_pop_frees_worker_immediately(self):
        delivered = [
            item(1.0, "jA", "blkA", seq=0),
            item(1.0, "jB", "blkB", size=128 * MB, seq=1),
        ]
        events = [
            instant(1.0, "jA", "blkA", 0.0, "skipped"),
            span(1.0, 1.0, "jB", "blkB", 0.0),
        ]
        assert replay(delivered, events) == []


class TestViolationDetection:
    def test_wrong_order_is_flagged_exactly_once(self):
        # B (small) should migrate before C (big), but the slave served
        # C first.  The model resyncs after the first mismatch, so one
        # product bug yields one violation, not a cascade.
        delivered = [
            item(1.0, "jA", "blkA", size=64 * MB, seq=0),
            item(1.5, "jB", "blkB", size=32 * MB, seq=1),
            item(1.5, "jC", "blkC", size=256 * MB, seq=2),
        ]
        events = [
            span(1.0, 2.0, "jA", "blkA", 0.0),
            span(3.0, 1.0, "jC", "blkC", 1.5),
            span(4.0, 1.0, "jB", "blkB", 2.5),
        ]
        violations = replay(delivered, events)
        assert len(violations) == 1
        assert "[order]" in violations[0]
        assert "jB/blkB" in violations[0]

    def test_unserved_item_with_idle_worker_is_work_conservation(self):
        delivered = [item(1.0, "jA", "blkA", seq=0)]
        violations = replay(delivered, [])
        assert len(violations) == 1
        assert "[work-conservation]" in violations[0]

    def test_pop_with_nothing_queued_is_phantom(self):
        events = [span(1.0, 1.0, "ghost", "blk", 0.0)]
        violations = replay([], events)
        assert len(violations) == 1
        assert "[phantom-pop]" in violations[0]

    def test_misreported_queue_wait_is_flagged(self):
        delivered = [
            item(1.0, "jA", "blkA", seq=0),
            item(1.0, "jB", "blkB", size=128 * MB, seq=1),
        ]
        events = [
            span(1.0, 1.0, "jA", "blkA", 0.0),
            # B actually waited 1.0s but reports 0.25s.
            span(2.0, 1.0, "jB", "blkB", 0.25),
        ]
        violations = replay(delivered, events)
        assert len(violations) == 1
        assert "[queue-wait]" in violations[0]

    def test_completing_a_resident_block_twice_is_flagged(self):
        delivered = [
            item(1.0, "job1", "blk1", seq=0),
            item(1.0, "job2", "blk1", size=128 * MB, seq=1),
        ]
        events = [
            span(1.0, 1.0, "job1", "blk1", 0.0),
            span(2.0, 1.0, "job2", "blk1", 1.0),
        ]
        violations = replay(delivered, events)
        assert any("[double-migration]" in v for v in violations)


class TestCommandBoundary:
    def test_second_replica_migration_is_flagged(self):
        checker = DifferentialChecker(
            "smallest-job-first", replicas_to_migrate=1
        )
        checker._targets[("j1", "blk1")] = {"node0"}

        class _Item:
            job_id = "j1"
            block_id = "blk1"
            job_input_bytes = 64 * MB
            job_submitted_at = 0.0
            order_hint = 0
            seq = 0
            dst_tier = "mem"

            class block:
                nbytes = 64 * MB

        class _Command:
            items = [_Item()]

        class _Env:
            now = 1.0

        class _Slave:
            env = _Env()

            @staticmethod
            def reference_list(block_id):
                return {"j1"}

        checker.on_delivery("node1", "migrate", _Command(), _Slave())
        assert any("[one-replica]" in v for v in checker.violations)
