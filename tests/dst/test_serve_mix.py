"""Mixed batch + interactive (serve) DST scenarios."""

import pathlib
from types import SimpleNamespace

import pytest

from repro.dst import (
    Scenario,
    ScenarioGenerator,
    ServeTraffic,
    run_scenario,
    serve_requests,
)
from repro.dst.oracles import oracle_tenant_fairness
from repro.dst.shrinker import shrink_scenario
from repro.storage import MB

CORPUS = pathlib.Path(__file__).parent / "corpus"


class TestServeTraffic:
    def test_round_trip(self):
        traffic = ServeTraffic(num_requests=20, num_tenants=3, heat=True)
        assert ServeTraffic.from_dict(traffic.to_dict()) == traffic

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0},
            {"num_requests": 10, "num_objects": 0},
            {"num_requests": 10, "object_bytes": 0.0},
            {"num_requests": 10, "num_tenants": 0},
            {"num_requests": 10, "zipf_s": 0.0},
            {"num_requests": 10, "tenant_tick_bytes": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServeTraffic(**kwargs)


class TestInteractiveGenerator:
    def test_flag_off_reproduces_classic_scenarios(self):
        classic = ScenarioGenerator(11)
        gated = ScenarioGenerator(11, interactive=False)
        for index in range(5):
            assert (
                classic.generate(index).to_json()
                == gated.generate(index).to_json()
            )
            assert classic.generate(index).serve is None

    def test_interactive_draws_do_not_perturb_classic_fields(self):
        """Serve draws come strictly after every classic draw: the
        batch half of an interactive scenario is byte-identical to its
        classic twin."""
        classic = ScenarioGenerator(11)
        interactive = ScenarioGenerator(11, interactive=True)
        for index in range(5):
            a = classic.generate(index).to_dict()
            b = interactive.generate(index).to_dict()
            b.pop("serve", None)
            assert a == b

    def test_interactive_mixes_serve_and_batch_only(self):
        generator = ScenarioGenerator(0, interactive=True)
        scenarios = [generator.generate(index) for index in range(12)]
        with_serve = [s for s in scenarios if s.serve is not None]
        assert with_serve  # serve traffic appears...
        assert len(with_serve) < len(scenarios)  # ...but not always
        assert any(s.serve.heat for s in with_serve)

    def test_generation_is_deterministic(self):
        a = ScenarioGenerator(3, interactive=True).generate(4)
        b = ScenarioGenerator(3, interactive=True).generate(4)
        assert a.to_json() == b.to_json()


class TestServeRequests:
    def _scenario(self, **serve_kwargs):
        serve_kwargs.setdefault("num_requests", 25)
        base = ScenarioGenerator(5).generate(0)
        import dataclasses

        return dataclasses.replace(
            base, serve=ServeTraffic(**serve_kwargs)
        )

    def test_pure_function_of_scenario(self):
        scenario = self._scenario()
        assert serve_requests(scenario) == serve_requests(scenario)

    def test_fields_in_declared_ranges(self):
        scenario = self._scenario(num_tenants=2, num_objects=4)
        requests = serve_requests(scenario)
        assert len(requests) == 25
        for arrival, path, tenant, reader in requests:
            assert arrival > 0
            assert path.startswith("/dst/serve/obj-")
            assert tenant in {"tenant0", "tenant1"}
            assert reader in {
                f"node{i}" for i in range(scenario.num_nodes)
            }

    def test_batch_only_scenario_has_no_requests(self):
        assert serve_requests(ScenarioGenerator(5).generate(0)) == []


class TestMixedScenarioRuns:
    def test_mixed_serve_corpus_scenario_green(self):
        scenario = Scenario.load(CORPUS / "mixed-serve.json")
        assert scenario.serve is not None and scenario.serve.heat
        result = run_scenario(scenario)
        assert result.ok, result.format_violations()
        assert result.stats["serve_requests"] == scenario.serve.num_requests
        assert result.stats["serve_completed"] > 0
        assert result.stats["heat_ticks"] > 0

    def test_mixed_replay_is_deterministic(self):
        scenario = Scenario.load(CORPUS / "mixed-serve.json")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.stats == second.stats
        assert first.violations == second.violations


class TestTenantFairnessOracle:
    def _context(self, serve, log):
        migrator = SimpleNamespace(fairness_log=log)
        scenario = SimpleNamespace(serve=serve)
        cluster = SimpleNamespace(heat_migrator=migrator)
        return SimpleNamespace(scenario=scenario, cluster=cluster)

    def test_silent_without_serve_traffic(self):
        ctx = self._context(None, [])
        assert oracle_tenant_fairness(ctx) == []

    def test_under_cap_passes(self):
        serve = ServeTraffic(
            num_requests=10, tenant_tick_bytes=100 * MB, heat=True
        )
        log = [{"tick": 1, "time": 5.0, "granted": {"t0": 90 * MB}}]
        assert oracle_tenant_fairness(self._context(serve, log)) == []

    def test_over_cap_convicted(self):
        serve = ServeTraffic(
            num_requests=10, tenant_tick_bytes=100 * MB, heat=True
        )
        log = [
            {"tick": 1, "time": 5.0, "granted": {"t0": 90 * MB}},
            {"tick": 2, "time": 7.0, "granted": {"t1": 160 * MB}},
        ]
        violations = oracle_tenant_fairness(self._context(serve, log))
        assert len(violations) == 1
        assert "t1" in violations[0]


class TestShrinkerDropsServe:
    def test_serve_independent_failure_sheds_traffic(self):
        scenario = Scenario.load(CORPUS / "mixed-serve.json")

        def still_fails(candidate):
            return True  # failure independent of everything

        shrunk, _attempts = shrink_scenario(scenario, still_fails)
        assert shrunk.serve is None
        assert len(shrunk.jobs) == 1
