"""Harness end-to-end: clean scenarios pass, planted bugs are caught.

The sabotage self-tests are the proof the subsystem works: a DST
harness that cannot convict a deliberately broken system proves
nothing.  Each mode plants one class of bug behind the scenario's
back and asserts the matching oracle fires.
"""

import pathlib

import pytest

from repro.dst import (
    DstRunner,
    Scenario,
    ScenarioJob,
    apply_sabotage,
    build_cluster,
    run_scenario,
)
from repro.storage import GB, MB

CORPUS = pathlib.Path(__file__).parent / "corpus"


def tiny_scenario():
    return Scenario(
        seed=11,
        num_nodes=2,
        replication=1,
        slots_per_node=2,
        block_size=64 * MB,
        buffer_capacity=1 * GB,
        policy="smallest-job-first",
        ha=False,
        implicit_eviction=True,
        jobs=(
            ScenarioJob(
                name="tiny-swim",
                kind="swim",
                input_path="/dst/tiny",
                input_bytes=128 * MB,
                arrival=0.0,
            ),
        ),
    )


class TestCleanRun:
    def test_tiny_scenario_passes_every_oracle(self):
        result = run_scenario(tiny_scenario())
        assert result.ok, result.format_violations()
        assert result.stats["jobs_completed"] == 1
        assert result.stats["jobs_failed"] == 0
        assert result.stats["migrations_completed"] >= 1
        assert result.stats["trace_events"] > 0
        # One report per oracle, all clean.
        assert all(report.ok for report in result.reports)

    def test_run_is_deterministic(self):
        first = run_scenario(tiny_scenario())
        second = run_scenario(tiny_scenario())
        assert first.stats == second.stats
        assert first.violations == second.violations


class TestSabotage:
    def test_unknown_mode_rejected(self):
        cluster, _ = build_cluster(tiny_scenario())
        with pytest.raises(ValueError):
            apply_sabotage(cluster, "unplug-the-router")

    def test_evict_to_admit_convicted_by_do_not_harm_oracle(self):
        # The corpus scenario was shrunk under exactly this sabotage:
        # a full buffer plus a second job forces an evict-to-admit.
        scenario = Scenario.load(CORPUS / "buffer-pressure.json")
        result = run_scenario(scenario, sabotage="evict-to-admit")
        assert not result.ok
        assert "do_not_harm" in {name for name, _ in result.violations}

    def test_fifo_queue_convicted_by_differential_model(self):
        report = DstRunner(seed=0, sabotage="fifo-queue").fuzz(
            25, shrink=False
        )
        assert not report.ok
        failing = {
            name
            for result in report.failures
            for name, _ in result.violations
        }
        assert "differential" in failing

    def test_overcommit_buffer_convicted_by_buffer_cap_oracle(self):
        report = DstRunner(seed=0, sabotage="overcommit-buffer").fuzz(
            25, shrink=False
        )
        assert not report.ok
        failing = {
            name
            for result in report.failures
            for name, _ in result.violations
        }
        assert "buffer_cap" in failing

    def test_disable_repair_convicted_by_replication_oracles(self):
        # Elasticity draws guarantee permanent node losses appear in the
        # fuzzed fault plans; with the monitor off, those losses leave
        # blocks under-replicated forever.
        report = DstRunner(
            seed=0, sabotage="disable-repair", elasticity=True
        ).fuzz(25, shrink=False)
        assert not report.ok
        failing = {
            name
            for result in report.failures
            for name, _ in result.violations
        }
        assert failing & {"replication", "no_data_loss", "fault_invariants"}


class TestElasticFuzz:
    def test_elastic_sweep_with_repair_passes(self):
        report = DstRunner(seed=3, elasticity=True).fuzz(6, shrink=False)
        assert report.ok, report.format()
        assert report.scenarios_run == 6


class TestRunnerMetrics:
    def test_oracle_verdict_counters_feed_the_registry(self):
        runner = DstRunner(seed=0)
        report = runner.fuzz(3, shrink=False)
        assert report.ok
        registry = runner.registry
        assert registry.counter("dst.scenarios.run").value == 3
        assert registry.counter("dst.scenarios.failed").value == 0
        assert registry.counter("dst.oracle.differential.pass").value == 3
        assert registry.counter("dst.oracle.do_not_harm.pass").value == 3
        snapshot = registry.snapshot()
        assert any(
            key.startswith("dst.oracle.") for key in snapshot["counters"]
        )

    def test_failures_counted_under_sabotage(self):
        runner = DstRunner(seed=0, sabotage="fifo-queue")
        report = runner.fuzz(25, shrink=False)
        assert len(report.failures) == 1
        assert runner.registry.counter("dst.scenarios.failed").value == 1
        assert runner.registry.counter("dst.scenarios.run").value == (
            report.scenarios_run
        )


class TestArtifacts:
    def test_failure_artifact_round_trips(self, tmp_path):
        runner = DstRunner(seed=0, sabotage="fifo-queue")
        report = runner.fuzz(25, shrink=False)
        runner.write_artifact(report, tmp_path)
        assert report.artifact is not None
        saved = Scenario.load(report.artifact)
        assert saved.to_json() == report.failures[0].scenario.to_json()

    def test_no_artifact_written_on_a_clean_sweep(self, tmp_path):
        runner = DstRunner(seed=0)
        report = runner.fuzz(2, shrink=False)
        runner.write_artifact(report, tmp_path)
        assert report.artifact is None
        assert list(tmp_path.iterdir()) == []
