"""Shared cluster builders for the test and benchmark suites.

Before this module, every suite carried its own copy of "build a paper
testbed, enable Ignem, tweak one knob" — eight near-identical
``make_cluster`` functions.  The builders below are the single source:

* :func:`make_ignem_cluster` — the Ignem-enabled testbed (optionally as
  an HA pair, optionally with the re-replication monitor);
* :func:`make_dfs_cluster` — the plain DFS testbed with re-replication
  (no Ignem);
* :func:`make_sort_bench_cluster` — the sort-workload benchmark cluster
  with its input pre-materialized.

Test-suite defaults differ from production on purpose: ``rpc_latency=0``
so unit tests can step the clock without 2 ms command skew.  Pass a full
``config`` (or ``rpc_latency=...``) to override.
"""

from repro import IgnemConfig, build_paper_testbed
from repro.storage import GB


def make_ignem_cluster(
    num_nodes=4,
    replication=2,
    seed=13,
    config=None,
    ha=False,
    rereplication=False,
    **config_kwargs,
):
    """Paper testbed with Ignem enabled.

    ``config`` wins over ``config_kwargs`` (which are ``IgnemConfig``
    fields, e.g. ``buffer_capacity=128 * MB``).  With ``ha=True``
    returns ``(cluster, ha_pair)``; otherwise just the cluster.
    """
    cluster = build_paper_testbed(
        num_nodes=num_nodes, replication=replication, seed=seed
    )
    if rereplication:
        cluster.enable_rereplication()
    if config is None:
        config_kwargs.setdefault("rpc_latency", 0.0)
        config = IgnemConfig(**config_kwargs)
    elif config_kwargs:
        raise TypeError("pass either config or config kwargs, not both")
    pair = cluster.enable_ignem(config, ha=ha)
    return (cluster, pair) if ha else cluster


def make_dfs_cluster(num_nodes=4, replication=2, seed=3):
    """Plain DFS testbed (no Ignem) with the re-replication monitor."""
    cluster = build_paper_testbed(
        num_nodes=num_nodes, replication=replication, seed=seed
    )
    cluster.enable_rereplication()
    return cluster


def make_sort_bench_cluster(data_bytes=20 * GB, seed=0, ignem_config=None):
    """Sort-workload benchmark cluster with its input materialized."""
    from repro.workloads.sort import materialize

    cluster = build_paper_testbed(
        seed=seed, ignem=True, ignem_config=ignem_config
    )
    materialize(cluster, data_bytes)
    return cluster
