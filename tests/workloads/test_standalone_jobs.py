"""Tests for the sort and wordcount workload definitions."""

import pytest

from repro import build_paper_testbed
from repro.storage import GB, MB
from repro.workloads import sort, wordcount


class TestSortSpec:
    def test_shuffle_and_output_equal_input(self):
        spec = sort.make_sort_spec()
        assert spec.shuffle_bytes == sort.SORT_INPUT_BYTES
        assert spec.output_bytes == sort.SORT_INPUT_BYTES

    def test_materialize_creates_input(self):
        cluster = build_paper_testbed()
        sort.materialize(cluster, 1 * GB)
        assert cluster.namenode.exists(sort.SORT_INPUT_PATH)
        assert cluster.namenode.get_file(sort.SORT_INPUT_PATH).nbytes == 1 * GB

    def test_small_sort_runs_end_to_end(self):
        cluster = build_paper_testbed()
        sort.materialize(cluster, 1 * GB)
        job = cluster.engine.submit_job(sort.make_sort_spec(1 * GB))
        cluster.run()
        assert job.finished_at is not None
        assert job.num_maps == 16


class TestWordcountSpec:
    def test_shuffle_is_small_fraction_of_input(self):
        spec = wordcount.make_wordcount_spec(8)
        assert spec.shuffle_bytes <= 200 * MB
        assert spec.output_bytes < spec.shuffle_bytes

    def test_path_distinct_per_size(self):
        assert wordcount.wordcount_path(1) != wordcount.wordcount_path(2)

    def test_small_wordcount_runs_end_to_end(self):
        cluster = build_paper_testbed()
        wordcount.materialize(cluster, 0.5)
        job = cluster.engine.submit_job(wordcount.make_wordcount_spec(0.5))
        cluster.run()
        assert job.finished_at is not None

    def test_default_sweep_covers_paper_range(self):
        assert min(wordcount.DEFAULT_SIZES_GB) <= 1
        assert max(wordcount.DEFAULT_SIZES_GB) >= 12
