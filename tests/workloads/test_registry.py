"""The unified Workload protocol: registry, CLI generation, public API."""

import argparse
import warnings

import pytest

import repro
from repro import RunOptions
from repro.__main__ import build_parser, main
from repro.workloads import (
    ScaleConfig,
    ServeConfig,
    Workload,
    add_workload_arguments,
    cli_workloads,
    get_workload,
    params_from_args,
    register_workload,
    workload_registry,
)

ALL_FAMILIES = {
    "google-trace",
    "scale",
    "serve",
    "sort",
    "swim",
    "wordcount",
}


class TestRegistry:
    def test_every_family_registered(self):
        assert set(workload_registry()) == ALL_FAMILIES

    def test_registry_sorted_by_name(self):
        names = list(workload_registry())
        assert names == sorted(names)

    def test_get_workload_unknown_name(self):
        with pytest.raises(KeyError, match="serve"):
            get_workload("no-such-workload")

    def test_cli_workloads_subset(self):
        names = [cls.name for cls in cli_workloads()]
        assert names == ["scale", "serve"]
        assert all(cls.cli for cls in cli_workloads())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="serve"):

            @register_workload
            class Duplicate(Workload):
                name = "serve"
                summary = "clash"
                Params = ServeConfig

    def test_workloads_declare_summary_and_params(self):
        for name, cls in workload_registry().items():
            assert cls.summary, name
            assert cls.Params is not None, name


class TestCliGeneration:
    def test_serve_subcommand_generated(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--policy", "hint", "--requests", "64", "--seed", "9"]
        )
        params = params_from_args(ServeConfig, args)
        assert params.policy == "hint"
        assert params.num_requests == 64
        assert params.seed == 9

    def test_scale_flags_preserved_after_migration(self):
        """The hand-written scale subparser was replaced by generated
        flags; the CI smoke job's exact invocation must keep parsing."""
        parser = build_parser()
        args = parser.parse_args(
            ["scale", "--nodes", "200", "--jobs", "2000", "--seed", "1"]
        )
        params = params_from_args(ScaleConfig, args)
        assert params.num_nodes == 200
        assert params.num_jobs == 2000
        assert params.ignem is True

    def test_inverted_bool_flag(self):
        parser = build_parser()
        args = parser.parse_args(["scale", "--no-ignem"])
        params = params_from_args(ScaleConfig, args)
        assert params.ignem is False

    def test_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--policy", "oracle"])

    def test_add_workload_arguments_skips_non_cli_fields(self):
        parser = argparse.ArgumentParser()
        parser.add_argument("--seed", type=int, default=0)
        add_workload_arguments(parser, ServeConfig)
        text = parser.format_help()
        assert "--policy" in text
        assert "object_bytes" not in text  # metadata cli:False
        assert "--heat" not in text  # nested config is not a flag

    def test_list_shows_workload_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workloads:" in out
        for name in ALL_FAMILIES:
            assert name in out
        # CLI-enabled families carry the subcommand marker.
        assert any(
            line.startswith("  serve") and "*" in line
            for line in out.splitlines()
        )


class TestPublicApi:
    def test_serving_symbols_exported(self):
        for symbol in (
            "ServeConfig",
            "HeatConfig",
            "HeatEstimator",
            "RunOptions",
            "workload_registry",
        ):
            assert symbol in repro.__all__
            assert hasattr(repro, symbol)

    def test_run_options_defaults(self):
        options = RunOptions()
        assert options.trace is None and options.metrics is None


class TestRunOptionsDeprecation:
    """The legacy ``run(trace=..., metrics=...)`` kwargs went through
    one release of DeprecationWarning and are now removed."""

    def _cluster(self):
        from repro import Cluster, ClusterConfig

        return Cluster(ClusterConfig(num_nodes=2, seed=0))

    def test_old_kwargs_now_raise_type_error(self, tmp_path):
        cluster = self._cluster()
        with pytest.raises(TypeError):
            cluster.run(trace=str(tmp_path / "trace.json"))

    def test_old_metrics_kwarg_now_raises_type_error(self, tmp_path):
        cluster = self._cluster()
        with pytest.raises(TypeError):
            cluster.run(metrics=str(tmp_path / "metrics.json"))

    def test_options_object_is_silent(self, tmp_path):
        cluster = self._cluster()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cluster.run(options=RunOptions())

    def test_mixing_options_and_kwargs_rejected(self, tmp_path):
        cluster = self._cluster()
        with pytest.raises(TypeError):
            cluster.run(
                options=RunOptions(), trace=str(tmp_path / "trace.json")
            )
