"""Tests for the SWIM workload generator."""

import pytest

from repro.workloads.swim import SwimGenerator, size_bin, to_specs
from repro.storage import GB, MB


@pytest.fixture(scope="module")
def jobs():
    return SwimGenerator(seed=0).generate()


class TestMarginals:
    def test_job_count(self, jobs):
        assert len(jobs) == 200

    def test_total_bytes_close_to_170gb(self, jobs):
        total = sum(j.input_bytes for j in jobs)
        assert total == pytest.approx(170 * GB, rel=0.02)

    def test_small_job_fraction(self, jobs):
        small = sum(1 for j in jobs if j.input_bytes <= 64 * MB)
        assert small / len(jobs) == pytest.approx(0.85, abs=0.02)

    def test_largest_job_at_most_24gb(self, jobs):
        assert max(j.input_bytes for j in jobs) <= 24 * GB

    def test_heavy_tail_exists(self, jobs):
        assert max(j.input_bytes for j in jobs) >= 4 * GB

    def test_all_three_bins_present(self, jobs):
        bins = {size_bin(j.input_bytes) for j in jobs}
        assert bins == {"small", "medium", "large"}

    def test_arrivals_strictly_increasing(self, jobs):
        arrivals = [j.arrival_time for j in jobs]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_shuffle_and_output_bounded_by_input(self, jobs):
        for job in jobs:
            assert 0 <= job.shuffle_bytes <= job.input_bytes
            assert 0 <= job.output_bytes <= job.shuffle_bytes


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = SwimGenerator(seed=5).generate()
        b = SwimGenerator(seed=5).generate()
        assert [j.input_bytes for j in a] == [j.input_bytes for j in b]
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_different_seed_different_workload(self):
        a = SwimGenerator(seed=5).generate()
        b = SwimGenerator(seed=6).generate()
        assert [j.input_bytes for j in a] != [j.input_bytes for j in b]


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            SwimGenerator(0).generate(num_jobs=0)

    def test_bad_small_fraction_rejected(self):
        with pytest.raises(ValueError):
            SwimGenerator(0).generate(small_fraction=1.5)


class TestToSpecs:
    def test_specs_align_with_jobs(self, jobs):
        specs, arrivals = to_specs(jobs)
        assert len(specs) == len(arrivals) == len(jobs)
        for spec, job in zip(specs, jobs):
            assert spec.input_paths == (job.input_path,)
            assert spec.shuffle_bytes == job.shuffle_bytes
            assert spec.num_reduces >= 1

    def test_reduces_scale_with_shuffle(self, jobs):
        specs, _ = to_specs(jobs)
        big = max(specs, key=lambda s: s.shuffle_bytes)
        small = min(specs, key=lambda s: s.shuffle_bytes)
        assert big.num_reduces >= small.num_reduces


class TestSizeBin:
    def test_boundaries(self):
        assert size_bin(64 * MB) == "small"
        assert size_bin(64 * MB + 1) == "medium"
        assert size_bin(512 * MB) == "medium"
        assert size_bin(512 * MB + 1) == "large"


class TestTraceIO:
    def test_swim_roundtrip(self, jobs, tmp_path):
        from repro.workloads import load_swim_trace, save_swim_trace

        path = tmp_path / "swim.tsv"
        save_swim_trace(jobs, path)
        loaded = load_swim_trace(path)
        assert len(loaded) == len(jobs)
        for original, restored in zip(jobs, loaded):
            assert restored.index == original.index
            assert restored.arrival_time == pytest.approx(
                original.arrival_time, abs=1e-5
            )
            assert restored.input_bytes == pytest.approx(
                original.input_bytes, abs=1.0
            )

    def test_swim_load_skips_comments_and_blanks(self, tmp_path):
        from repro.workloads import load_swim_trace

        path = tmp_path / "swim.tsv"
        path.write_text("# header comment\n\n0\t1.0\t100\t10\t5\n")
        loaded = load_swim_trace(path)
        assert len(loaded) == 1
        assert loaded[0].input_bytes == 100

    def test_swim_load_rejects_malformed_lines(self, tmp_path):
        from repro.workloads import load_swim_trace

        path = tmp_path / "swim.tsv"
        path.write_text("0\t1.0\t100\n")
        with pytest.raises(ValueError):
            load_swim_trace(path)
