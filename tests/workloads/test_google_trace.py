"""Tests for the synthetic Google trace generator."""

import pytest

from repro.workloads.google_trace import (
    GoogleTraceGenerator,
    GoogleTraceJob,
    TaskUsageInterval,
)


@pytest.fixture(scope="module")
def jobs():
    return GoogleTraceGenerator(seed=0).generate_jobs(num_jobs=8000)


class TestJobRows:
    def test_count(self, jobs):
        assert len(jobs) == 8000

    def test_queue_delay_marginals_match_paper(self, jobs):
        delays = sorted(j.queue_delay for j in jobs)
        mean = sum(delays) / len(delays)
        median = delays[len(delays) // 2]
        assert mean == pytest.approx(8.8, rel=0.2)
        assert median == pytest.approx(1.8, rel=0.15)

    def test_leadtime_sufficiency_near_81_percent(self, jobs):
        sufficient = sum(1 for j in jobs if j.total_read_time < j.lead_time)
        assert sufficient / len(jobs) == pytest.approx(0.81, abs=0.03)

    def test_read_time_splits_over_tasks(self, jobs):
        for job in jobs[:100]:
            assert job.total_read_time == pytest.approx(
                sum(job.task_io_times), rel=1e-9
            )
            assert all(t >= 0 for t in job.task_io_times)

    def test_submit_times_increase(self, jobs):
        submits = [j.submit_time for j in jobs]
        assert all(b > a for a, b in zip(submits, submits[1:]))

    def test_determinism(self):
        a = GoogleTraceGenerator(seed=9).generate_jobs(num_jobs=100)
        b = GoogleTraceGenerator(seed=9).generate_jobs(num_jobs=100)
        assert [j.queue_delay for j in a] == [j.queue_delay for j in b]

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            GoogleTraceGenerator(0).generate_jobs(num_jobs=0)


class TestServerUsage:
    def test_interval_structure(self):
        rows = GoogleTraceGenerator(seed=0).generate_server_usage(
            num_servers=3, duration=3600
        )
        servers = {r.server for r in rows}
        assert servers == {0, 1, 2}
        for row in rows:
            assert 0 <= row.io_time <= row.end - row.start
            assert row.end - row.start == pytest.approx(300.0)

    def test_mean_utilization_near_paper(self):
        rows = GoogleTraceGenerator(seed=0).generate_server_usage(
            num_servers=20, duration=12 * 3600
        )
        by_server_total = {}
        for row in rows:
            by_server_total[row.server] = by_server_total.get(row.server, 0) + row.io_time
        utils = [total / (12 * 3600) for total in by_server_total.values()]
        assert sum(utils) / len(utils) == pytest.approx(0.031, abs=0.012)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TaskUsageInterval(server=0, start=10, end=10, io_time=0)
        with pytest.raises(ValueError):
            TaskUsageInterval(server=0, start=0, end=10, io_time=11)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            GoogleTraceGenerator(0).generate_server_usage(num_servers=0)


class TestGoogleTraceIO:
    def test_roundtrip(self, jobs, tmp_path):
        from repro.workloads import load_google_jobs, save_google_jobs

        sample = jobs[:200]
        path = tmp_path / "google.csv"
        save_google_jobs(sample, path)
        loaded = load_google_jobs(path)
        assert len(loaded) == len(sample)
        for original, restored in zip(sample, loaded):
            assert restored.job_id == original.job_id
            assert restored.queue_delay == pytest.approx(
                original.queue_delay, abs=1e-5
            )
            assert len(restored.task_io_times) == len(original.task_io_times)

    def test_load_rejects_missing_columns(self, tmp_path):
        from repro.workloads import load_google_jobs

        path = tmp_path / "bad.csv"
        path.write_text("job_id,submit_time\n0,1.0\n")
        with pytest.raises(ValueError):
            load_google_jobs(path)

    def test_loaded_jobs_feed_the_analysis(self, jobs, tmp_path):
        from repro.analysis import analyze_lead_time
        from repro.workloads import load_google_jobs, save_google_jobs

        path = tmp_path / "google.csv"
        save_google_jobs(jobs[:1000], path)
        analysis = analyze_lead_time(load_google_jobs(path))
        assert 0.5 <= analysis.sufficient_fraction <= 1.0


class TestWeeklyPattern:
    def test_day_factor_cycles(self):
        generator = GoogleTraceGenerator(seed=0)
        assert generator.day_factor(0) == 1.0
        assert generator.day_factor(7) == 1.0
        assert generator.day_factor(1) < 1.0

    def test_month_mean_vs_busiest_day_matches_paper(self):
        """Paper: ~3.1% over the analyzed 24h, ~1.3% over the month."""
        from repro.analysis import overall_mean_utilization, server_utilization

        generator = GoogleTraceGenerator(seed=0)
        week = 7 * 86400.0
        rows = generator.generate_server_usage(
            num_servers=4, duration=week, daily_pattern=True
        )
        # Coarser resolution keeps the week-long analysis fast; the
        # uniform-IO assumption makes the means resolution-independent.
        timelines = server_utilization(rows, duration=week, resolution=30.0)
        month_mean = overall_mean_utilization(timelines)

        day_rows = [r for r in rows if r.end <= 86400.0]
        day_timelines = server_utilization(
            day_rows, duration=86400.0, resolution=30.0
        )
        day_mean = overall_mean_utilization(day_timelines)

        assert day_mean == pytest.approx(0.031, abs=0.012)
        assert month_mean == pytest.approx(0.013, abs=0.006)
        assert day_mean > 1.8 * month_mean
