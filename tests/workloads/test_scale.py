"""Tests for the trace-scale replay harness (and its CLI entry point)."""

import json

import pytest

from repro.__main__ import main
from repro.workloads.scale import (
    ScaleConfig,
    format_scale_result,
    run_scale_replay,
)

#: Small enough to run in well under a second, large enough to engage
#: the scale fast paths (sampled placement, parked heartbeats, pooled
#: wakeups) and produce a meaningful event count.
SMALL = ScaleConfig(num_nodes=100, num_jobs=300)


@pytest.fixture(scope="module")
def small_result():
    return run_scale_replay(SMALL)


class TestReplay:
    def test_every_job_completes(self, small_result):
        assert small_result.jobs_completed == SMALL.num_jobs
        assert small_result.block_reads > 0
        assert small_result.sim_time > 0

    def test_migrations_feed_ram_reads(self, small_result):
        # The trace's queueing delays exceed migration time for ~81% of
        # jobs (paper Fig 3), so a healthy majority of reads must come
        # out of memory.
        assert small_result.migrations_completed > 0
        assert small_result.ram_block_reads > small_result.block_reads // 2
        assert (
            small_result.ram_block_reads + small_result.disk_block_reads
            == small_result.block_reads
        )

    def test_same_seed_is_bit_identical(self, small_result):
        replay = run_scale_replay(SMALL)
        assert replay.events == small_result.events
        assert replay.sim_time == small_result.sim_time
        assert replay.jobs_completed == small_result.jobs_completed
        assert replay.block_reads == small_result.block_reads
        assert replay.ram_block_reads == small_result.ram_block_reads
        assert replay.migrations_completed == small_result.migrations_completed
        assert replay.migrated_bytes == small_result.migrated_bytes
        assert replay.dataset_bytes == small_result.dataset_bytes

    def test_different_seed_diverges(self, small_result):
        other = run_scale_replay(
            ScaleConfig(num_nodes=100, num_jobs=300, seed=7)
        )
        assert other.events != small_result.events

    def test_plain_hdfs_baseline_never_migrates(self):
        result = run_scale_replay(
            ScaleConfig(num_nodes=50, num_jobs=100, ignem=False)
        )
        assert result.jobs_completed == 100
        assert result.migrations_completed == 0
        assert result.migrated_bytes == 0.0
        # Every block is read exactly once, always cold: no RAM hits.
        assert result.ram_block_reads == 0

    def test_block_cap_bounds_the_tail(self):
        capped = run_scale_replay(
            ScaleConfig(num_nodes=50, num_jobs=200, max_blocks_per_job=4)
        )
        block_size = 64 * 1024 * 1024
        assert capped.dataset_bytes <= 200 * 4 * block_size
        assert capped.capped_jobs > 0

    def test_report_mentions_the_headline_numbers(self, small_result):
        report = format_scale_result(small_result)
        assert "100 nodes" in report
        assert f"{SMALL.num_jobs}/{SMALL.num_jobs} completed" in report
        assert "events" in report


class TestScaleCli:
    def test_scale_subcommand_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "scale",
                "--nodes",
                "50",
                "--jobs",
                "100",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "scale.json").read_text())
        assert payload["num_nodes"] == 50
        assert payload["jobs_completed"] == 100
        assert payload["events"] > 0
        report = (tmp_path / "scale.txt").read_text()
        assert "Trace-scale replay" in report
        assert "Trace-scale replay" in capsys.readouterr().out

    def test_scale_cli_matches_library_result(self, tmp_path):
        main(
            [
                "scale",
                "--nodes",
                "50",
                "--jobs",
                "100",
                "--seed",
                "3",
                "--out",
                str(tmp_path),
            ]
        )
        payload = json.loads((tmp_path / "scale.json").read_text())
        direct = run_scale_replay(
            ScaleConfig(num_nodes=50, num_jobs=100, seed=3)
        )
        assert payload["events"] == direct.events
        assert payload["sim_time"] == direct.sim_time
        assert payload["block_reads"] == direct.block_reads
