"""Tests for the interactive serving workload (Zipf, diurnal, SLOs)."""

import json
import subprocess
import sys

import pytest

from repro.sim.rand import RandomSource
from repro.storage import MB
from repro.workloads.serve import (
    ServeConfig,
    ZipfSampler,
    diurnal_rate,
    format_serve_result,
    generate_requests,
    run_serve,
)

#: A small-but-meaningful shape shared by the behavioral tests.
SMALL = dict(
    num_nodes=4,
    num_objects=12,
    object_bytes=32 * MB,
    replication=2,
    num_requests=200,
    base_rps=6.0,
    num_tenants=2,
    flash_crowds=1,
)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        zipf = ZipfSampler(20, 1.1)
        total = sum(zipf.probability(rank) for rank in range(20))
        assert total == pytest.approx(1.0)

    def test_popularity_decreases_with_rank(self):
        zipf = ZipfSampler(10, 1.2)
        probs = [zipf.probability(rank) for rank in range(10)]
        assert probs == sorted(probs, reverse=True)

    def test_sample_covers_extremes(self):
        zipf = ZipfSampler(5, 1.0)
        assert zipf.sample(0.0) == 0
        assert zipf.sample(1.0) == 4

    def test_sample_matches_cdf(self):
        zipf = ZipfSampler(4, 1.0)
        # Just past rank 0's mass must land on rank 1.
        assert zipf.sample(zipf.probability(0) + 1e-9) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, 0.0)


class TestDiurnalRate:
    def test_flat_without_amplitude(self):
        assert diurnal_rate(10.0, 0.0, 240.0, 17.0) == pytest.approx(10.0)

    def test_peak_at_quarter_period(self):
        assert diurnal_rate(10.0, 0.5, 240.0, 60.0) == pytest.approx(15.0)

    def test_trough_at_three_quarters(self):
        assert diurnal_rate(10.0, 0.5, 240.0, 180.0) == pytest.approx(5.0)

    def test_rate_never_collapses_to_zero(self):
        # Even amplitude > 1 keeps a 5% floor (arrival gaps stay finite).
        assert diurnal_rate(10.0, 2.0, 240.0, 180.0) == pytest.approx(0.5)


class TestGenerateRequests:
    def test_deterministic_for_same_seed(self):
        config = ServeConfig(**SMALL, seed=7)
        a = generate_requests(config, RandomSource(7).spawn("serve"))
        b = generate_requests(config, RandomSource(7).spawn("serve"))
        assert a == b

    def test_arrivals_sorted_and_fields_in_range(self):
        config = ServeConfig(**SMALL, seed=1)
        requests = generate_requests(config, RandomSource(1).spawn("serve"))
        assert len(requests) == config.num_requests
        times = [request.time for request in requests]
        assert times == sorted(times)
        tenants = {request.tenant for request in requests}
        assert tenants <= {f"tenant{i}" for i in range(config.num_tenants)}
        for request in requests:
            assert request.path.startswith("/serve/obj-")
            assert request.reader.startswith("node")

    def test_zipf_concentrates_traffic(self):
        config = ServeConfig(
            **dict(SMALL, flash_crowds=0), seed=3, zipf_s=1.3
        )
        requests = generate_requests(config, RandomSource(3).spawn("serve"))
        counts = {}
        for request in requests:
            counts[request.path] = counts.get(request.path, 0) + 1
        top = max(counts.values())
        assert top >= len(requests) / config.num_objects * 2


class TestRunServe:
    def test_two_runs_identical(self):
        config = ServeConfig(**SMALL, policy="heat", seed=0)
        first = run_serve(config).to_dict()
        second = run_serve(config).to_dict()
        assert first == second

    def test_heat_beats_none_on_p99(self):
        none = run_serve(ServeConfig(**SMALL, policy="none", seed=0))
        heat = run_serve(ServeConfig(**SMALL, policy="heat", seed=0))
        assert heat.p99 < none.p99
        assert heat.ram_block_reads > 0
        assert none.ram_block_reads == 0
        assert heat.promotions > 0

    def test_hint_policy_pins_hot_objects(self):
        result = run_serve(ServeConfig(**SMALL, policy="hint", seed=0))
        assert result.ram_block_reads > 0
        assert result.migrations_completed > 0
        assert result.promotions == 0  # hints, not the heat policy

    def test_tenant_histograms_cover_all_tenants(self):
        result = run_serve(ServeConfig(**SMALL, policy="none", seed=0))
        assert set(result.tenant_p99) == {
            f"tenant{i}" for i in range(SMALL["num_tenants"])
        }

    def test_batch_jobs_ride_along(self):
        config = ServeConfig(**SMALL, policy="heat", seed=0, batch_jobs=3)
        result = run_serve(config)
        assert result.batch_jobs_completed == 3

    def test_format_mentions_percentiles(self):
        result = run_serve(ServeConfig(**SMALL, policy="heat", seed=0))
        text = format_serve_result(result)
        assert "p99" in text and "p999" in text
        assert "heat policy" in text

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServeConfig(policy="oracle")
        with pytest.raises(ValueError):
            ServeConfig(num_requests=0)
        with pytest.raises(ValueError):
            ServeConfig(zipf_s=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(diurnal_amplitude=-0.1)


class TestServeCli:
    def test_double_run_byte_identical(self, tmp_path):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        for out in (out_a, out_b):
            subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "serve",
                    "--nodes",
                    "4",
                    "--objects",
                    "12",
                    "--requests",
                    "120",
                    "--seed",
                    "5",
                    "--out",
                    str(out),
                ],
                check=True,
                capture_output=True,
            )
        assert (out_a / "serve.json").read_bytes() == (
            out_b / "serve.json"
        ).read_bytes()
        assert (out_a / "serve.txt").read_bytes() == (
            out_b / "serve.txt"
        ).read_bytes()
        payload = json.loads((out_a / "serve.json").read_text())
        assert payload["policy"] == "heat"
        assert payload["requests_served"] == 120
