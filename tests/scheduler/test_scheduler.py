"""Tests for the heartbeat-driven ResourceManager/NodeManager scheduler."""

import pytest

from repro.scheduler import NodeManager, ResourceManager, TaskRequest
from repro.sim import Environment


def make_cluster(env, nodes=2, slots=2, interval=3.0, stagger=0.0):
    rm = ResourceManager(env)
    for index in range(nodes):
        rm.register_node(
            NodeManager(
                env,
                f"n{index}",
                slots=slots,
                heartbeat_interval=interval,
                heartbeat_offset=index * stagger,
            )
        )
    return rm


def simple_task(env, job_id, task_id, duration, log=None, **kwargs):
    def execute(node):
        yield env.timeout(duration)
        if log is not None:
            log.append((task_id, node, env.now))

    return TaskRequest(env, job_id, task_id, "map", execute, **kwargs)


class TestHeartbeatScheduling:
    def test_task_starts_at_first_heartbeat(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, interval=3.0)
        log = []

        def submitter(env):
            yield env.timeout(1.0)
            rm.submit(simple_task(env, "j1", "t1", duration=2.0, log=log))

        env.process(submitter(env))
        env.run()
        # Heartbeats at t=0, 3, 6...; the task (submitted at t=1) starts
        # at t=3 and finishes at t=5.
        assert log == [("t1", "n0", 5.0)]

    def test_queueing_creates_lead_time(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=3.0)
        tasks = [simple_task(env, "j1", f"t{i}", duration=10.0) for i in range(2)]

        def submitter(env):
            yield env.timeout(0.5)
            rm.submit_all(tasks)

        env.process(submitter(env))
        env.run()
        # Second task waits for the slot: lead time >> heartbeat interval.
        assert tasks[0].started_at == pytest.approx(3.0)
        assert tasks[1].started_at - tasks[1].submitted_at > 10.0

    def test_slots_limit_concurrency(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=2, interval=1.0)
        tasks = [simple_task(env, "j1", f"t{i}", duration=5.0) for i in range(4)]

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit_all(tasks)

        env.process(submitter(env))
        env.run()
        starts = sorted(t.started_at for t in tasks)
        assert starts[0] == starts[1] == pytest.approx(1.0)
        assert starts[2] >= 6.0

    def test_work_spreads_across_nodes(self):
        env = Environment()
        rm = make_cluster(env, nodes=2, slots=1, interval=1.0)
        log = []
        tasks = [
            simple_task(env, "j1", f"t{i}", duration=5.0, log=log) for i in range(2)
        ]

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit_all(tasks)

        env.process(submitter(env))
        env.run()
        nodes_used = {node for _, node, _ in log}
        assert nodes_used == {"n0", "n1"}

    def test_fifo_order_across_jobs(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=1.0)
        log = []

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit(simple_task(env, "j1", "a", duration=1.0, log=log))
            rm.submit(simple_task(env, "j2", "b", duration=1.0, log=log))
            rm.submit(simple_task(env, "j3", "c", duration=1.0, log=log))

        env.process(submitter(env))
        env.run()
        assert [entry[0] for entry in log] == ["a", "b", "c"]

    def test_freed_slot_reused_immediately_on_completion(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=100.0)
        log = []
        tasks = [
            simple_task(env, "j1", f"t{i}", duration=1.0, log=log) for i in range(3)
        ]

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit_all(tasks)

        env.process(submitter(env))
        env.run(until=200)
        # Despite a 100s heartbeat, completion-driven scheduling runs all
        # three back-to-back after the first heartbeat at t=100.
        assert len(log) == 3
        assert log[-1][2] == pytest.approx(103.0)


class TestLocality:
    def test_disk_local_task_preferred(self):
        env = Environment()
        rm = make_cluster(env, nodes=2, slots=1, interval=1.0, stagger=0.1)
        log = []
        far = simple_task(env, "j1", "far", duration=5.0, log=log, disk_nodes=["n1"])
        near = simple_task(env, "j1", "near", duration=5.0, log=log, disk_nodes=["n0"])

        def submitter(env):
            yield env.timeout(0.5)
            rm.submit_all([far, near])

        env.process(submitter(env))
        env.run()
        # n0 heartbeats first; although "far" is older, "near" is local.
        assert near.assigned_node == "n0"
        assert far.assigned_node == "n1"

    def test_memory_locality_beats_disk_locality(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=1.0)
        migrated_on = {"hot": set()}
        disk_task = simple_task(
            env, "j1", "disky", duration=1.0, disk_nodes=["n0"]
        )
        mem_task = TaskRequest(
            env,
            "j1",
            "hot",
            "map",
            lambda node: iter(_one_tick(env)),
            disk_nodes=["n9"],
            memory_nodes_fn=lambda: migrated_on["hot"],
        )

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit_all([disk_task, mem_task])
            migrated_on["hot"] = {"n0"}  # migration completes while queued

        env.process(submitter(env))
        env.run()
        assert mem_task.started_at < disk_task.started_at

    def test_memory_nodes_evaluated_lazily(self):
        env = Environment()
        calls = []

        def fn():
            calls.append(env.now)
            return set()

        task = TaskRequest(
            env, "j", "t", "map", lambda node: iter(()), memory_nodes_fn=fn
        )
        assert task.memory_nodes() == frozenset()
        assert calls  # invoked on demand


class TestJobLifecycle:
    def test_job_active_tracking(self):
        env = Environment()
        rm = ResourceManager(env)
        rm.register_job("j1")
        assert rm.job_active("j1")
        rm.unregister_job("j1")
        assert not rm.job_active("j1")
        assert not rm.job_active("never-seen")

    def test_unregister_drops_pending_tasks(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=1000.0)
        rm.submit(simple_task(env, "j1", "t1", duration=1.0))
        rm.submit(simple_task(env, "j2", "t2", duration=1.0))
        assert rm.pending_count == 2
        rm.unregister_job("j1")
        assert rm.pending_count == 1


class TestValidation:
    def test_bad_slots_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            NodeManager(env, "n", slots=0)

    def test_bad_interval_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            NodeManager(env, "n", slots=1, heartbeat_interval=0)

    def test_bad_kind_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            TaskRequest(env, "j", "t", "shuffle", lambda node: iter(()))

    def test_duplicate_node_rejected(self):
        env = Environment()
        rm = ResourceManager(env)
        rm.register_node(NodeManager(env, "n0", slots=1))
        with pytest.raises(ValueError):
            rm.register_node(NodeManager(env, "n0", slots=1))


def _one_tick(env):
    yield env.timeout(1.0)


class TestTaskRetry:
    def test_failed_task_retries_on_another_node(self):
        env = Environment()
        rm = make_cluster(env, nodes=2, slots=1, interval=1.0, stagger=0.1)
        attempts = []

        def execute(node):
            attempts.append(node)
            yield env.timeout(1.0)
            if len(attempts) == 1:
                raise RuntimeError("flaky hardware")

        task = TaskRequest(env, "j1", "t1", "map", execute)
        rm.register_job("j1")

        def submitter(env):
            yield env.timeout(0.1)
            rm.submit(task)

        env.process(submitter(env))
        env.run()
        assert len(attempts) == 2
        assert attempts[0] != attempts[1]  # excluded from the failing node
        assert rm.tasks_retried == 1
        assert task.completed.triggered and task.completed.ok

    def test_task_abandoned_after_max_attempts(self):
        env = Environment()
        rm = ResourceManager(env, max_task_attempts=2)
        rm.register_node(NodeManager(env, "n0", slots=1, heartbeat_interval=1.0))
        rm.register_node(NodeManager(env, "n1", slots=1, heartbeat_interval=1.0))
        rm.register_job("j1")

        def execute(node):
            yield env.timeout(0.5)
            raise RuntimeError("always broken")

        task = TaskRequest(env, "j1", "t1", "map", execute)
        failures = []

        def waiter(env):
            try:
                yield task.completed
            except RuntimeError as err:
                failures.append(str(err))

        rm.submit(task)
        env.process(waiter(env))
        env.run()
        assert task.attempts == 2
        assert rm.tasks_abandoned == 1
        assert failures == ["always broken"]

    def test_node_failure_interrupts_running_containers(self):
        env = Environment()
        rm = make_cluster(env, nodes=2, slots=1, interval=1.0, stagger=0.1)
        log = []

        def execute(node):
            log.append(("start", node, env.now))
            yield env.timeout(30.0)
            log.append(("end", node, env.now))

        task = TaskRequest(env, "j1", "t1", "map", execute)
        rm.register_job("j1")

        def chaos(env):
            yield env.timeout(0.1)
            rm.submit(task)
            yield env.timeout(5.0)
            victim = next(n for n in rm.nodes() if n.name == task.assigned_node)
            victim.fail()

        env.process(chaos(env))
        env.run()
        starts = [entry for entry in log if entry[0] == "start"]
        ends = [entry for entry in log if entry[0] == "end"]
        assert len(starts) == 2  # original + retry
        assert len(ends) == 1  # only the retry ran to completion
        assert ends[0][1] != starts[0][1]

    def test_retry_skipped_for_torn_down_jobs(self):
        env = Environment()
        rm = make_cluster(env, nodes=1, slots=1, interval=1.0)

        def execute(node):
            yield env.timeout(1.0)
            raise RuntimeError("crash after job teardown")

        task = TaskRequest(env, "ghost-job", "t1", "map", execute)
        rm.submit(task)  # note: job never registered -> not active
        env.run()
        assert rm.tasks_retried == 0
        assert task.attempts == 1

    def test_invalid_max_attempts_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            ResourceManager(env, max_task_attempts=0)
