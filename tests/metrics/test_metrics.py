"""Tests for records, the collector, and statistics helpers."""

import pytest

from repro.metrics import (
    BlockReadRecord,
    JobRecord,
    MetricsCollector,
    MigrationRecord,
    TaskRecord,
    cdf,
    fraction_below,
    histogram,
    mean,
    median,
    percentile,
    speedup,
    speedup_factor,
)


def block_read(job="j1", task="t1", duration=1.0, source="hdd", start=0.0):
    return BlockReadRecord(
        job_id=job,
        task_id=task,
        block_id="b1",
        node="n0",
        source=source,
        nbytes=64,
        start=start,
        end=start + duration,
    )


def task(job="j1", task_id="t1", kind="map", duration=2.0):
    return TaskRecord(
        job_id=job,
        task_id=task_id,
        kind=kind,
        node="n0",
        scheduled_at=0.0,
        start=1.0,
        end=1.0 + duration,
    )


def job(job_id="j1", duration=10.0):
    return JobRecord(
        job_id=job_id,
        name=job_id,
        submitted_at=0.0,
        first_task_start=2.0,
        end=duration,
        input_bytes=100,
        num_maps=1,
        num_reduces=1,
    )


class TestRecords:
    def test_durations(self):
        assert block_read(duration=3.0).duration == 3.0
        assert task(duration=4.0).duration == 4.0
        assert job(duration=9.0).duration == 9.0

    def test_job_lead_time(self):
        assert job().lead_time == 2.0

    def test_task_queue_delay(self):
        assert task().queue_delay == 1.0

    def test_migration_duration(self):
        record = MigrationRecord(
            job_id="j",
            block_id="b",
            node="n",
            nbytes=1,
            enqueued_at=0.0,
            start=1.0,
            end=3.0,
            outcome="completed",
        )
        assert record.duration == 2.0


class TestCollector:
    def test_mean_helpers(self):
        collector = MetricsCollector()
        collector.record_job(job("a", 10.0))
        collector.record_job(job("b", 20.0))
        collector.record_task(task("a", "t1", "map", 2.0))
        collector.record_task(task("a", "t2", "reduce", 6.0))
        collector.record_block_read(block_read(duration=1.0))
        assert collector.mean_job_duration() == 15.0
        assert collector.mean_task_duration() == 4.0
        assert collector.mean_task_duration("map") == 2.0
        assert collector.mean_block_read_duration() == 1.0

    def test_empty_means_raise(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.mean_job_duration()
        with pytest.raises(ValueError):
            collector.mean_task_duration()
        with pytest.raises(ValueError):
            collector.mean_block_read_duration()

    def test_queries(self):
        collector = MetricsCollector()
        collector.record_job(job("a"))
        collector.record_task(task("a", "t1", "map"))
        collector.record_task(task("b", "t2", "reduce"))
        collector.record_block_read(block_read(job="a"))
        assert collector.job("a") is not None
        assert collector.job("zzz") is None
        assert len(collector.tasks_for_job("a")) == 1
        assert len(collector.map_tasks()) == 1
        assert len(collector.reduce_tasks()) == 1
        assert len(collector.block_reads_for_job("a")) == 1
        assert collector.filter_jobs(lambda j: j.job_id == "a")

    def test_completed_migrations_filter(self):
        collector = MetricsCollector()
        for outcome in ("completed", "skipped", "cancelled"):
            collector.record_migration(
                MigrationRecord(
                    job_id="j",
                    block_id="b",
                    node="n",
                    nbytes=1,
                    enqueued_at=0,
                    start=0,
                    end=0,
                    outcome=outcome,
                )
            )
        assert len(collector.completed_migrations()) == 1

    def test_summary(self):
        collector = MetricsCollector()
        collector.record_job(job())
        summary = collector.summary()
        assert summary["jobs"] == 1
        assert "mean_job_duration" in summary


class TestStats:
    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2.0
        assert median([1, 2, 3, 100]) == 2.5

    def test_percentile(self):
        assert percentile(list(range(101)), 90) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_cdf_monotone(self):
        values, fractions = cdf([3, 1, 2])
        assert values == [1, 2, 3]
        assert fractions == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5

    def test_histogram_normalized(self):
        edges, freqs = histogram([1, 1, 2, 3], bins=3)
        assert sum(freqs) == pytest.approx(1.0)
        assert len(edges) == 4

    def test_speedup_matches_paper_convention(self):
        # Table I: Ignem 12.7s vs HDFS 14.4s is a 12% speedup.
        assert speedup(14.4, 12.7) == pytest.approx(0.118, abs=0.002)

    def test_speedup_factor(self):
        assert speedup_factor(160.0, 1.0) == 160.0

    def test_empty_inputs_raise(self):
        for fn in (mean, median, cdf):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            fraction_below([], 1)
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            speedup(0, 1)
        with pytest.raises(ValueError):
            speedup_factor(1, 0)
