"""Regression tests for the lazy id->record indexes on MetricsCollector.

``job()`` and ``tasks_for_job()`` used to scan linearly per call; they
are now backed by lazily built indexes that must be invalidated on
append and must return exactly what the scans returned.
"""

from repro.metrics.collector import MetricsCollector
from repro.metrics.records import JobRecord, TaskRecord


def _job(job_id, name="j"):
    return JobRecord(
        job_id=job_id,
        name=name,
        submitted_at=0.0,
        first_task_start=0.0,
        end=1.0,
        input_bytes=0.0,
        num_maps=1,
        num_reduces=0,
    )


def _task(job_id, task_id, kind="map"):
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        kind=kind,
        node="node0",
        scheduled_at=0.0,
        start=0.0,
        end=1.0,
    )


def _scan_job(collector, job_id):
    for record in collector.jobs:
        if record.job_id == job_id:
            return record
    return None


def _scan_tasks(collector, job_id, kind=None):
    return [
        t
        for t in collector.tasks
        if t.job_id == job_id and (kind is None or t.kind == kind)
    ]


class TestJobIndex:
    def test_matches_linear_scan(self):
        collector = MetricsCollector()
        for i in range(20):
            collector.record_job(_job(f"job{i}"))
        for i in range(20):
            assert collector.job(f"job{i}") is _scan_job(collector, f"job{i}")
        assert collector.job("missing") is None

    def test_invalidated_on_append_after_lookup(self):
        collector = MetricsCollector()
        collector.record_job(_job("a"))
        assert collector.job("a") is not None  # builds the index
        collector.record_job(_job("b"))
        assert collector.job("b") is collector.jobs[1]

    def test_detects_direct_list_append(self):
        collector = MetricsCollector()
        collector.record_job(_job("a"))
        assert collector.job("b") is None  # builds the index
        collector.jobs.append(_job("b"))  # bypasses record_job
        assert collector.job("b") is collector.jobs[1]

    def test_duplicate_ids_keep_first_record(self):
        collector = MetricsCollector()
        first, second = _job("dup"), _job("dup")
        collector.record_job(first)
        collector.record_job(second)
        assert collector.job("dup") is first
        assert collector.job("dup") is _scan_job(collector, "dup")


class TestTasksIndex:
    def test_matches_linear_scan_with_and_without_kind(self):
        collector = MetricsCollector()
        for i in range(10):
            job_id = f"job{i % 3}"
            collector.record_task(_task(job_id, f"t{i}", kind="map"))
            collector.record_task(_task(job_id, f"r{i}", kind="reduce"))
        for job_id in ("job0", "job1", "job2", "missing"):
            assert collector.tasks_for_job(job_id) == _scan_tasks(
                collector, job_id
            )
            for kind in ("map", "reduce"):
                assert collector.tasks_for_job(job_id, kind) == _scan_tasks(
                    collector, job_id, kind
                )

    def test_preserves_append_order(self):
        collector = MetricsCollector()
        tasks = [_task("j", f"t{i}") for i in range(5)]
        for task in tasks:
            collector.record_task(task)
        assert collector.tasks_for_job("j") == tasks

    def test_invalidated_on_append_and_direct_append(self):
        collector = MetricsCollector()
        collector.record_task(_task("j", "t0"))
        assert len(collector.tasks_for_job("j")) == 1  # builds the index
        collector.record_task(_task("j", "t1"))
        assert len(collector.tasks_for_job("j")) == 2
        collector.tasks.append(_task("j", "t2"))  # bypasses record_task
        assert len(collector.tasks_for_job("j")) == 3

    def test_returned_list_is_a_copy(self):
        collector = MetricsCollector()
        collector.record_task(_task("j", "t0"))
        listing = collector.tasks_for_job("j")
        listing.append("sentinel")
        assert collector.tasks_for_job("j") == [collector.tasks[0]]
