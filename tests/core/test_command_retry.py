"""Master→slave command robustness: timeout/retry, reroute, abandonment."""

import pytest

from repro.storage import MB
from tests.fixtures import make_ignem_cluster


def make_cluster(num_nodes=4, replication=2, **config_kwargs):
    # This suite times the retry/backoff loop, so commands keep the
    # production 2 ms RPC latency instead of the test default of zero.
    config_kwargs.setdefault("rpc_latency", 0.002)
    return make_ignem_cluster(
        num_nodes=num_nodes, replication=replication, **config_kwargs
    )


class DropFirst:
    """rpc_fault hook that loses the first ``n`` sends."""

    def __init__(self, n):
        self.remaining = n

    def __call__(self, node):
        if self.remaining > 0:
            self.remaining -= 1
            return "lost"
        return None


class TestRetry:
    def test_lost_command_is_retried_and_lands(self):
        cluster = make_cluster()
        master = cluster.ignem_master
        master.rpc_fault = DropFirst(1)
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()

        assert master.metrics.value("ignem.master.command_retries") == 1
        assert master.metrics.value("ignem.master.commands_abandoned") == 0
        block = cluster.namenode.file_blocks("/f")[0]
        assert any(
            s.block_migrated(block.block_id) for s in master.slaves()
        )

    def test_retry_backoff_is_paid(self):
        cluster = make_cluster(
            command_timeout=0.5,
            command_backoff=0.25,
            command_backoff_factor=2.0,
        )
        master = cluster.ignem_master
        master.rpc_fault = DropFirst(2)
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)

        delivered = []
        original = cluster.ignem_slaves.copy()
        for name, slave in original.items():
            real = slave.receive_migrate

            def spy(command, _real=real):
                delivered.append(cluster.env.now)
                return _real(command)

            slave.receive_migrate = spy

        master.request_migration(["/f"], "j1")
        cluster.run()

        # Two lost sends: latency + (timeout + 0.25) + (timeout + 0.5)
        # before the third attempt's latency delivers.
        assert delivered
        assert delivered[0] == pytest.approx(3 * 0.002 + 0.75 + 1.0)
        assert master.metrics.value("ignem.master.command_retries") == 2


class TestReroute:
    def test_dead_slave_falls_over_to_live_replica(self):
        """Kill each replica's slave in turn: whichever one the master
        picks first, the block always lands on a live replica, and the
        reroute path fires for at least one of the two placements."""
        rerouted = 0
        for victim_index in (0, 1):
            cluster = make_cluster()
            master = cluster.ignem_master
            cluster.rm.register_job("j1")
            cluster.client.create_file("/f", 128 * MB)
            block = cluster.namenode.file_blocks("/f")[0]
            replicas = cluster.namenode.get_block_locations(block.block_id)
            victim = replicas[victim_index]
            cluster.ignem_slaves[victim].alive = False
            master.request_migration(["/f"], "j1")
            cluster.run()
            rerouted += master.metrics.value("ignem.master.commands_rerouted")
            migrated_on = [
                name
                for name, slave in cluster.ignem_slaves.items()
                if slave.block_migrated(block.block_id)
            ]
            assert migrated_on
            assert victim not in migrated_on
            assert master.metrics.value("ignem.master.commands_abandoned") == 0
        assert rerouted >= 1


class TestAbandonment:
    def test_no_live_replica_abandons_cleanly(self):
        cluster = make_cluster(num_nodes=2, replication=1)
        master = cluster.ignem_master
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        (holder,) = cluster.namenode.get_block_locations(block.block_id)
        cluster.ignem_slaves[holder].alive = False
        master.request_migration(["/f"], "j1")
        cluster.run()

        assert master.metrics.value("ignem.master.commands_abandoned") >= 1
        assert all(
            not slave.block_migrated(block.block_id)
            for slave in master.slaves()
        )

    def test_lost_evict_is_abandoned_not_rerouted(self):
        cluster = make_cluster()
        master = cluster.ignem_master
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()

        master.rpc_fault = lambda node: "lost"
        master.request_eviction(["/f"], "j1")
        cluster.run()
        master.rpc_fault = None

        # Evictions are idempotent cleanup: after retries they are
        # dropped (the liveness sweep is the backstop), never rerouted.
        assert master.metrics.value("ignem.master.commands_abandoned") >= 1
        assert master.metrics.value("ignem.master.commands_rerouted") == 0
