"""Liveness sweep under memory pressure (paper III-A4).

A job that disappears without evicting leaks references; the sweep runs
when the buffer is under pressure, reclaims what dead jobs pinned, and
the freed space admits the waiting migration — all without ever touching
a live job's blocks (do-not-harm, III-A3).
"""

from repro.storage import MB
from tests.fixtures import make_ignem_cluster


def make_cluster(buffer_capacity):
    return make_ignem_cluster(
        num_nodes=1, replication=1, buffer_capacity=buffer_capacity
    )


class TestSweepUnderPressure:
    def test_leaked_refs_collected_and_freed_space_admits_migration(self):
        cluster = make_cluster(buffer_capacity=128 * MB)
        slave = cluster.ignem_slaves["node0"]
        master = cluster.ignem_master

        # j1 migrates a full-buffer block, then vanishes from the
        # scheduler without evicting: a leaked reference.
        cluster.rm.register_job("j1")
        cluster.client.create_file("/a", 128 * MB)
        master.request_migration(["/a"], "j1")
        cluster.run()
        assert slave.migrated_bytes == 128 * MB
        cluster.rm.unregister_job("j1")

        # j2 wants its own block; the buffer is full of dead-job data.
        cluster.rm.register_job("j2")
        cluster.client.create_file("/b", 128 * MB)
        master.request_migration(["/b"], "j2")
        cluster.run()

        block_a = cluster.namenode.file_blocks("/a")[0]
        block_b = cluster.namenode.file_blocks("/b")[0]
        # The sweep collected j1's leak and the freed buffer admitted j2.
        assert not slave.block_migrated(block_a.block_id)
        assert slave.block_migrated(block_b.block_id)
        assert slave.reference_list(block_a.block_id) == set()
        assert slave.reference_list(block_b.block_id) == {"j2"}

    def test_sweep_never_touches_live_jobs(self):
        cluster = make_cluster(buffer_capacity=128 * MB)
        slave = cluster.ignem_slaves["node0"]
        master = cluster.ignem_master

        # j1 is alive and holds the whole buffer.
        cluster.rm.register_job("j1")
        cluster.client.create_file("/a", 128 * MB)
        master.request_migration(["/a"], "j1")
        cluster.run()

        # j2's migration finds no space, and the sweep must not evict
        # j1's not-yet-read block to make room (do-not-harm).
        cluster.rm.register_job("j2")
        cluster.client.create_file("/b", 128 * MB)
        master.request_migration(["/b"], "j2")
        cluster.run()

        block_a = cluster.namenode.file_blocks("/a")[0]
        block_b = cluster.namenode.file_blocks("/b")[0]
        assert slave.block_migrated(block_a.block_id)
        assert not slave.block_migrated(block_b.block_id)
        # The buffer never exceeded capacity while both jobs pushed.
        peak = max(usage for _, usage in slave.usage_timeline)
        assert peak <= 128 * MB

    def test_forced_sweep_collects_without_pressure(self):
        cluster = make_cluster(buffer_capacity=512 * MB)
        slave = cluster.ignem_slaves["node0"]
        master = cluster.ignem_master

        cluster.rm.register_job("j1")
        cluster.client.create_file("/a", 128 * MB)
        master.request_migration(["/a"], "j1")
        cluster.run()
        cluster.rm.unregister_job("j1")

        # Occupancy is far below cleanup_threshold: the gated sweep
        # stays parked, but force=True (the post-run invariant sweep)
        # collects the leak anyway.
        slave.cleanup_dead_jobs()
        assert slave.reference_count() == 2  # one leaked ref per block
        slave.cleanup_dead_jobs(force=True)
        assert slave.reference_count() == 0
        assert slave.migrated_bytes == 0
