"""Tests for the extension features: benefit-aware policy, HA master,
and the Aqueduct-style busy throttle."""

import pytest

from repro import IgnemConfig, JobSpec, build_paper_testbed
from repro.core import BenefitAware, HighAvailabilityMaster, make_policy
from repro.core.commands import MigrationWorkItem
from repro.dfs import Block
from repro.storage import GB, MB

from .conftest import make_cluster


def item(job_id="j", input_bytes=100 * MB, submitted_at=0.0):
    return MigrationWorkItem(
        block=Block(f"{job_id}-b", "/f", 0, 64 * MB),
        job_id=job_id,
        job_input_bytes=input_bytes,
        job_submitted_at=submitted_at,
        implicit_eviction=False,
    )


class TestBenefitAwarePolicy:
    def test_small_jobs_saturate_benefit(self):
        policy = BenefitAware(expected_lead_bytes=512 * MB)
        assert policy.benefit(item(input_bytes=64 * MB)) == 1.0
        assert policy.benefit(item(input_bytes=512 * MB)) == 1.0

    def test_large_jobs_get_partial_benefit(self):
        policy = BenefitAware(expected_lead_bytes=512 * MB)
        assert policy.benefit(item(input_bytes=2 * GB)) == pytest.approx(0.25)

    def test_higher_benefit_migrates_first(self):
        policy = BenefitAware(expected_lead_bytes=512 * MB)
        small = item("small", input_bytes=128 * MB)
        huge = item("huge", input_bytes=10 * GB)
        assert policy.priority(small) < policy.priority(huge)

    def test_saturated_jobs_tie_break_by_submission(self):
        policy = BenefitAware(expected_lead_bytes=512 * MB)
        early = item("early", input_bytes=64 * MB, submitted_at=1.0)
        late_but_smaller = item("late", input_bytes=1 * MB, submitted_at=2.0)
        # Both fully migrable: FIFO between them, unlike smallest-first.
        assert policy.priority(early) < policy.priority(late_but_smaller)

    def test_factory_and_validation(self):
        assert isinstance(make_policy("benefit-aware"), BenefitAware)
        with pytest.raises(ValueError):
            BenefitAware(expected_lead_bytes=0)

    def test_end_to_end_with_benefit_aware_config(self):
        cluster = make_cluster(
            ignem_config=IgnemConfig(policy="benefit-aware", rpc_latency=0.0)
        )
        cluster.client.create_file("/f", 256 * MB)
        cluster.rm.register_job("j1")
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()
        total = sum(s.migrated_bytes for s in cluster.ignem_master.slaves())
        assert total == 256 * MB


class TestHighAvailabilityMaster:
    def build(self):
        cluster = build_paper_testbed(num_nodes=4, replication=2, seed=13)
        ha = HighAvailabilityMaster(
            cluster.env,
            cluster.namenode,
            rng=cluster.rng.spawn("ha"),
            config=IgnemConfig(rpc_latency=0.0),
            collector=cluster.collector,
        )
        from repro.core import IgnemSlave

        for datanode in cluster.datanodes.values():
            slave = IgnemSlave(
                cluster.env,
                datanode,
                cluster.rm,
                IgnemConfig(rpc_latency=0.0),
                cluster.collector,
            )
            ha.attach_slave(slave)
        cluster.client.ignem_master = ha
        return cluster, ha

    def test_primary_serves_by_default(self):
        cluster, ha = self.build()
        assert ha.active is ha.primary
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        ha.request_migration(["/f"], "j1")
        cluster.run()
        assert sum(s.migrated_bytes for s in ha.slaves()) == 128 * MB

    def test_failover_is_immediate(self):
        cluster, ha = self.build()
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        ha.fail_primary()
        assert ha.active is ha.standby
        assert ha.alive
        assert ha.failovers == 1
        ha.request_migration(["/f"], "j1")
        cluster.run()
        # Unlike a master restart, no request was lost.
        assert sum(s.migrated_bytes for s in ha.slaves()) == 128 * MB

    def test_failover_purges_slave_state(self):
        cluster, ha = self.build()
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        ha.request_migration(["/f"], "j1")
        cluster.run()
        assert sum(s.migrated_bytes for s in ha.slaves()) > 0
        ha.fail_primary()
        assert sum(s.migrated_bytes for s in ha.slaves()) == 0

    def test_double_failure_kills_service(self):
        cluster, ha = self.build()
        ha.fail_primary()
        ha.standby.fail()
        assert not ha.alive
        cluster.client.create_file("/f", 64 * MB)
        ha.request_migration(["/f"], "j1")  # dropped, no crash
        cluster.run()
        assert all(s.migrated_bytes == 0 for s in ha.standby.slaves())

    def test_recover_primary_swaps_roles(self):
        cluster, ha = self.build()
        old_primary = ha.primary
        old_standby = ha.standby
        ha.fail_primary()
        ha.recover_primary()
        assert ha.primary is old_standby
        assert ha.standby is old_primary
        assert ha.active.alive

    def test_fail_primary_idempotent(self):
        cluster, ha = self.build()
        ha.fail_primary()
        ha.fail_primary()
        assert ha.failovers == 1

    def test_eviction_routed_through_active(self):
        cluster, ha = self.build()
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        ha.fail_primary()
        ha.request_migration(["/f"], "j1")
        cluster.run()
        ha.request_eviction(["/f"], "j1")
        cluster.run()
        assert sum(s.migrated_bytes for s in ha.slaves()) == 0


class TestBusyThrottle:
    def test_throttle_defers_migration_under_load(self):
        config = IgnemConfig(rpc_latency=0.0, busy_threshold=1)
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        cluster.rm.register_job("j1")

        # Keep the disk busy with a long foreground read.
        disk = cluster.datanodes["node0"].disk
        disk.transfer(640 * MB, tag="foreground")

        def migrator(env):
            yield env.timeout(0.05)  # let the foreground stream be admitted
            cluster.ignem_master.request_migration(["/f"], "j1")

        cluster.env.process(migrator(cluster.env))
        # While the foreground stream runs, migration must hold off.
        cluster.env.run(until=2.0)
        slave = cluster.ignem_slaves["node0"]
        assert slave.migrated_bytes == 0
        cluster.run()
        assert slave.migrated_bytes == 64 * MB

    def test_throttle_skips_if_job_reads_while_waiting(self):
        config = IgnemConfig(rpc_latency=0.0, busy_threshold=1)
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        cluster.rm.register_job("j1")
        block = cluster.namenode.file_blocks("/f")[0]

        disk = cluster.datanodes["node0"].disk
        disk.transfer(640 * MB, tag="foreground")

        def migrator(env):
            # Let the foreground stream clear the disk's setup latency so
            # the throttle sees it as active when the command arrives.
            yield env.timeout(0.05)
            cluster.ignem_master.request_migration(
                ["/f"], "j1", implicit_eviction=True
            )

        def reader(env):
            yield env.timeout(0.5)
            read = cluster.client.read_block(block, "node0", job_id="j1")
            yield read.done

        cluster.env.process(migrator(cluster.env))
        cluster.env.process(reader(cluster.env))
        cluster.run()
        outcomes = {m.outcome for m in cluster.collector.migrations}
        assert outcomes == {"skipped"}
        assert cluster.ignem_slaves["node0"].migrated_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            IgnemConfig(busy_threshold=0)
        with pytest.raises(ValueError):
            IgnemConfig(busy_poll_interval=0)
