"""Additional slave behaviours: purging mid-wait, queue introspection,
implicit set handling, and migration records' fields."""

import pytest

from repro import IgnemConfig
from repro.storage import GB, MB

from .conftest import make_cluster


class TestQueueIntrospection:
    def test_pending_migrations_counts_queued_work(self):
        # Huge rpc latency keeps the commands in flight; zero here means
        # everything is queued at once and drains in order.
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 640 * MB)
        cluster.rm.register_job("j1")
        cluster.ignem_master.request_migration(["/f"], "j1")
        slave = cluster.ignem_slaves["node0"]
        # Before any simulation time passes, all ten blocks are queued.
        assert slave.pending_migrations == 10
        cluster.run()
        assert slave.pending_migrations == 0

    def test_repr_mentions_state(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        slave = cluster.ignem_slaves["node0"]
        assert "node0" in repr(slave)


class TestPurgeDuringCapacityWait:
    def test_purge_while_block_waits_for_space(self):
        config = IgnemConfig(buffer_capacity=64 * MB, rpc_latency=0.0)
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/a", 64 * MB)
        cluster.client.create_file("/b", 64 * MB)
        cluster.rm.register_job("j-a")
        cluster.rm.register_job("j-b")
        cluster.ignem_master.request_migration(["/a"], "j-a")
        cluster.ignem_master.request_migration(["/b"], "j-b")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        assert slave.migrated_bytes == 64 * MB  # /b waits for space
        slave.purge_all()
        assert slave.migrated_bytes == 0
        assert slave.reference_count() == 0
        # The simulation still drains (the waiting worker sees its refs
        # vanished and skips).
        cluster.run()


class TestMigrationRecordFields:
    def test_completed_record_carries_node_and_bytes(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        cluster.rm.register_job("j1")
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()
        (record,) = cluster.collector.completed_migrations()
        assert record.node == "node0"
        assert record.nbytes == 64 * MB
        assert record.enqueued_at <= record.start <= record.end
        assert record.duration > 0

    def test_memory_samples_match_timeline(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        samples = [
            (s.time, s.migrated_bytes)
            for s in cluster.collector.memory_samples
            if s.node == "node0"
        ]
        # The collector's samples are exactly the slave's timeline minus
        # the initial zero point.
        assert samples == slave.usage_timeline[1:]


class TestImplicitJobBookkeeping:
    def test_implicit_mode_is_per_job(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        cluster.rm.register_job("implicit-job")
        cluster.rm.register_job("explicit-job")
        cluster.ignem_master.request_migration(
            ["/f"], "implicit-job", implicit_eviction=True
        )
        cluster.ignem_master.request_migration(
            ["/f"], "explicit-job", implicit_eviction=False
        )
        cluster.run()
        block = cluster.namenode.file_blocks("/f")[0]
        slave = cluster.ignem_slaves["node0"]

        def read_as(env, job_id):
            read = cluster.client.read_block(block, "node0", job_id=job_id)
            yield read.done

        # The explicit job's read leaves its reference in place...
        cluster.env.process(read_as(cluster.env, "explicit-job"))
        cluster.run()
        assert "explicit-job" in slave.reference_list(block.block_id)
        # ...the implicit job's read drops its own.
        cluster.env.process(read_as(cluster.env, "implicit-job"))
        cluster.run()
        assert "implicit-job" not in slave.reference_list(block.block_id)
        assert slave.block_migrated(block.block_id)  # explicit ref remains
