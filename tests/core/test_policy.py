"""Tests for migration-queue ordering policies."""

import pytest

from repro.core import FifoOrder, SmallestJobFirst, make_policy
from repro.core.commands import MigrationWorkItem
from repro.dfs import Block
from repro.storage import MB


def item(job_id="j", input_bytes=100 * MB, submitted_at=0.0):
    block = Block(f"{job_id}-b", "/f", 0, 64 * MB)
    return MigrationWorkItem(
        block=block,
        job_id=job_id,
        job_input_bytes=input_bytes,
        job_submitted_at=submitted_at,
        implicit_eviction=False,
    )


class TestSmallestJobFirst:
    def test_smaller_job_wins(self):
        policy = SmallestJobFirst()
        small = item("small", input_bytes=64 * MB)
        big = item("big", input_bytes=1000 * MB)
        assert policy.priority(small) < policy.priority(big)

    def test_tie_broken_by_submission_time(self):
        policy = SmallestJobFirst()
        early = item("early", input_bytes=64 * MB, submitted_at=1.0)
        late = item("late", input_bytes=64 * MB, submitted_at=2.0)
        assert policy.priority(early) < policy.priority(late)

    def test_full_tie_broken_by_arrival_order(self):
        policy = SmallestJobFirst()
        first = item("a")
        second = item("a")
        assert policy.priority(first) < policy.priority(second)


class TestFifoOrder:
    def test_arrival_order_only(self):
        policy = FifoOrder()
        first = item("big-but-early", input_bytes=1000 * MB)
        second = item("small-but-late", input_bytes=1 * MB)
        assert policy.priority(first) < policy.priority(second)


class TestFactory:
    def test_make_known_policies(self):
        assert isinstance(make_policy("smallest-job-first"), SmallestJobFirst)
        assert isinstance(make_policy("fifo"), FifoOrder)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("random")
