"""Unit and integration tests for hint-free popularity-driven migration."""

import pytest

from repro.core.heat import (
    HeatConfig,
    HeatEstimator,
    PromotionCandidate,
    plan_promotions,
)
from repro.dfs.blocks import Block
from repro.storage import MB
from tests.fixtures import make_ignem_cluster


def _block(index, nbytes=64 * MB, path="/hot/data"):
    return Block(
        block_id=f"{path}#blk{index}", path=path, index=index, nbytes=nbytes
    )


class TestHeatConfig:
    def test_defaults_valid(self):
        HeatConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"half_life": 0.0},
            {"tick_interval": -1.0},
            {"promote_threshold": 0.0},
            {"demote_threshold": 5.0},  # >= promote_threshold
            {"demote_threshold": -0.1},
            {"tenant_tick_bytes": 0.0},
            {"max_outstanding_bytes": 0.0},
            {"overload": "panic"},
            {"request_ttl_ticks": 0},
            {"owner": ""},
            {"max_tracked": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            HeatConfig(**kwargs)


class TestHeatEstimator:
    def test_first_read_scores_one(self):
        estimator = HeatEstimator(half_life=10.0)
        estimator.record(_block(0), "a", now=5.0)
        assert estimator.heat(_block(0).block_id, 5.0) == pytest.approx(1.0)

    def test_heat_decays_by_half_each_half_life(self):
        estimator = HeatEstimator(half_life=10.0)
        estimator.record(_block(0), "a", now=0.0)
        assert estimator.heat(_block(0).block_id, 10.0) == pytest.approx(0.5)
        assert estimator.heat(_block(0).block_id, 20.0) == pytest.approx(0.25)

    def test_repeated_reads_accumulate(self):
        estimator = HeatEstimator(half_life=1000.0)
        bid = _block(0).block_id
        for t in range(5):
            estimator.record(_block(0), "a", now=float(t))
        assert estimator.heat(bid, 4.0) > 4.9  # ~5 with negligible decay

    def test_untracked_block_is_cold(self):
        estimator = HeatEstimator()
        assert estimator.heat("nope", 0.0) == 0.0
        assert estimator.max_heat(0.0) == 0.0

    def test_late_event_equals_in_order_event(self):
        in_order = HeatEstimator(half_life=10.0)
        reordered = HeatEstimator(half_life=10.0)
        block = _block(0)
        for t in (1.0, 4.0, 9.0):
            in_order.record(block, "a", now=t)
        for t in (9.0, 1.0, 4.0):
            reordered.record(block, "a", now=t)
        assert in_order.heat(block.block_id, 9.0) == pytest.approx(
            reordered.heat(block.block_id, 9.0)
        )

    def test_dominant_tenant_by_count_then_name(self):
        estimator = HeatEstimator(half_life=1000.0)
        block = _block(0)
        estimator.record(block, "b", now=0.0)
        estimator.record(block, "b", now=1.0)
        estimator.record(block, "a", now=2.0)
        assert estimator.dominant_tenant(block.block_id) == "b"
        estimator.record(block, "a", now=3.0)
        # Tied 2-2: lexicographically first tenant wins, deterministically.
        assert estimator.dominant_tenant(block.block_id) == "a"
        assert estimator.dominant_tenant("untracked") is None

    def test_items_sorted_hottest_first(self):
        estimator = HeatEstimator(half_life=1000.0)
        estimator.record(_block(0), "a", now=0.0)
        for _ in range(3):
            estimator.record(_block(1), "a", now=0.0)
        items = estimator.items(0.0)
        assert [bid for bid, _ in items] == [
            _block(1).block_id,
            _block(0).block_id,
        ]

    def test_max_tracked_drops_coldest(self):
        estimator = HeatEstimator(half_life=1000.0, max_tracked=10)
        for index in range(10):
            for _ in range(index + 1):  # block i gets i+1 reads
                estimator.record(_block(index), "a", now=0.0)
        estimator.record(_block(10), "a", now=0.0)  # 11th block: overflow
        assert estimator.tracked() == 10
        # The single-read coldest block was evicted, the hottest kept.
        assert estimator.heat(_block(0).block_id, 0.0) == 0.0
        assert estimator.heat(_block(9).block_id, 0.0) > 9.0

    def test_forget_clears_all_state(self):
        estimator = HeatEstimator()
        block = _block(0)
        estimator.record(block, "a", now=0.0)
        estimator.forget(block.block_id)
        assert estimator.tracked() == 0
        assert estimator.heat(block.block_id, 0.0) == 0.0
        assert estimator.block(block.block_id) is None
        assert estimator.dominant_tenant(block.block_id) is None


class TestPlanPromotions:
    def test_fairness_cap_binds_per_tenant(self):
        candidates = [
            PromotionCandidate(_block(i, nbytes=60 * MB), "a")
            for i in range(4)
        ]
        granted, spend, overflow = plan_promotions(
            candidates, 128 * MB, 10_000 * MB, 0.0
        )
        assert len(granted) == 2
        assert spend["a"] == pytest.approx(120 * MB)
        assert [reason for _c, reason in overflow] == ["fairness"] * 2

    def test_admission_cap_binds_across_tenants(self):
        candidates = [
            PromotionCandidate(_block(i, nbytes=60 * MB), f"t{i}")
            for i in range(4)
        ]
        granted, _spend, overflow = plan_promotions(
            candidates, 10_000 * MB, 130 * MB, 0.0
        )
        assert len(granted) == 2
        assert [reason for _c, reason in overflow] == ["admission"] * 2

    def test_outstanding_bytes_count_against_admission(self):
        candidates = [PromotionCandidate(_block(0, nbytes=60 * MB), "a")]
        granted, _spend, overflow = plan_promotions(
            candidates, 10_000 * MB, 100 * MB, 90 * MB
        )
        assert not granted
        assert overflow[0][1] == "admission"


def _read_pulse(cluster, blocks, times, tenant="tenant0", reader="node0"):
    """Schedule one read of every block at each absolute time."""
    env = cluster.env

    def pulse(event):
        yield event
        for block in blocks:
            cluster.client.read_block(block, reader, tenant=tenant)

    for event in env.timeout_batch(list(times)):
        env.process(pulse(event), name="read-pulse")


class TestPopularityMigrator:
    def _cluster(self, **heat_kwargs):
        cluster = make_ignem_cluster(buffer_capacity=2048 * MB)
        heat_kwargs.setdefault("half_life", 30.0)
        heat_kwargs.setdefault("tick_interval", 1.0)
        migrator = cluster.enable_heat_migration(HeatConfig(**heat_kwargs))
        return cluster, migrator

    def test_hot_blocks_promote_then_cool_and_demote(self):
        cluster, migrator = self._cluster(half_life=5.0)
        metadata = cluster.client.create_file("/hot/file", 128 * MB)
        _read_pulse(cluster, metadata.blocks, [1.0, 2.0, 3.0])
        cluster.run()
        # env.run() returned: the migrator promoted on heat, demoted as
        # the blocks cooled, then parked (quiescence terminates the sim).
        registry = cluster.metrics
        promotions = registry.counter("heat.policy.promotions").value
        demotions = registry.counter("heat.policy.demotions").value
        assert promotions == len(metadata.blocks)
        assert demotions == promotions
        assert not migrator.promoted
        # All promoted bytes were returned on demotion.
        for slave in cluster.ignem_slaves.values():
            assert slave.migrated_bytes == pytest.approx(0.0)

    def test_promoted_blocks_served_from_ram_while_hot(self):
        cluster, migrator = self._cluster(half_life=1000.0)
        metadata = cluster.client.create_file("/hot/file", 64 * MB)
        block = metadata.blocks[0]
        _read_pulse(cluster, [block], [1.0, 2.0, 3.0])
        # Let the promotion land, then read again while still hot.
        sources = []

        def late_read(event):
            yield event
            read = cluster.client.read_block(block, "node0", tenant="t")
            sources.append(read.source)

        cluster.env.process(
            late_read(cluster.env.timeout(30.0)), name="late-read"
        )
        cluster.env.run(until=40.0)
        assert block.block_id in migrator.promoted
        assert sources == ["ram"]
        migrator.shutdown()
        cluster.run()

    def test_shutdown_returns_cluster_to_clean_state(self):
        cluster, migrator = self._cluster(half_life=1000.0)
        metadata = cluster.client.create_file("/hot/file", 128 * MB)
        _read_pulse(cluster, metadata.blocks, [1.0, 2.0, 3.0])
        cluster.env.run(until=20.0)
        assert migrator.promoted
        migrator.shutdown()
        cluster.run()
        for slave in cluster.ignem_slaves.values():
            slave.cleanup_dead_jobs(force=True)
            assert slave.migrated_bytes == pytest.approx(0.0)
            assert not slave.referenced_blocks()
        assert not cluster.rm.job_active(migrator.config.owner)

    def test_no_reads_means_no_ticks_and_clean_termination(self):
        cluster, _migrator = self._cluster()
        cluster.client.create_file("/cold/file", 128 * MB)
        cluster.run()  # must terminate: the policy parks immediately
        assert cluster.metrics.counter("heat.policy.ticks").value == 0

    def test_tenant_fairness_cap_splits_promotion_wave(self):
        cluster, migrator = self._cluster(
            half_life=1000.0, tenant_tick_bytes=70 * MB
        )
        metadata = cluster.client.create_file("/hot/file", 256 * MB)
        _read_pulse(cluster, metadata.blocks, [1.0, 2.0, 3.0], tenant="t0")
        cluster.env.run(until=30.0)
        assert migrator.fairness_log
        for entry in migrator.fairness_log:
            for tenant, granted in entry["granted"].items():
                assert granted <= 70 * MB
        # Everything eventually promoted across several ticks.
        assert len(migrator.promoted) == len(metadata.blocks)
        migrator.shutdown()
        cluster.run()

    def test_requires_ignem(self):
        from repro import Cluster, ClusterConfig

        cluster = Cluster(ClusterConfig(num_nodes=2))
        with pytest.raises(RuntimeError):
            cluster.enable_heat_migration()

    def test_cannot_enable_twice(self):
        cluster, _migrator = self._cluster()
        with pytest.raises(RuntimeError):
            cluster.enable_heat_migration()
