"""HA master failover mid-run (paper III-A5 with a standby pair)."""

from repro.storage import GB, MB
from tests.fixtures import make_ignem_cluster


def make_ha_cluster():
    return make_ignem_cluster(ha=True, buffer_capacity=1 * GB)


class TestFailoverMidRun:
    def test_failover_purges_slaves_and_standby_serves(self):
        cluster, ha = make_ha_cluster()
        cluster.client.create_file("/f", 256 * MB)
        checkpoints = {}

        def driver(env):
            ha.request_migration(["/f"], "j1")
            yield env.timeout(0.05)  # mid-migration
            checkpoints["refs_before"] = sum(
                s.reference_count() for s in ha.slaves()
            )
            ha.fail_primary()
            # III-A5: the slaves purge every reference and migrated block
            # the moment the master is lost — the new master starts from
            # a state consistent with theirs.
            checkpoints["refs_after"] = sum(
                s.reference_count() for s in ha.slaves()
            )
            checkpoints["bytes_after"] = sum(
                s.migrated_bytes for s in ha.slaves()
            )
            yield env.timeout(0.05)
            # The standby is now active and serves new migrate calls.
            ha.request_migration(["/f"], "j2")

        cluster.env.process(driver(cluster.env), name="driver")
        cluster.run()

        assert checkpoints["refs_before"] > 0
        assert checkpoints["refs_after"] == 0
        assert checkpoints["bytes_after"] == 0
        assert ha.failovers == 1
        for block in cluster.namenode.file_blocks("/f"):
            assert any(s.block_migrated(block.block_id) for s in ha.slaves())

    def test_recover_primary_swaps_roles_back_cleanly(self):
        cluster, ha = make_ha_cluster()
        cluster.client.create_file("/f", 128 * MB)

        def driver(env):
            ha.fail_primary()
            yield env.timeout(1.0)
            ha.recover_primary()
            yield env.timeout(1.0)
            ha.request_migration(["/f"], "j1")

        cluster.env.process(driver(cluster.env), name="driver")
        cluster.run()

        assert ha.failovers == 1
        assert ha.alive
        for block in cluster.namenode.file_blocks("/f"):
            assert any(s.block_migrated(block.block_id) for s in ha.slaves())

    def test_repeated_failure_is_idempotent(self):
        cluster, ha = make_ha_cluster()
        ha.fail_primary()
        assert ha.alive  # standby took over
        ha.fail_primary()  # already failed: swallowed, not double-counted
        assert ha.failovers == 1
        assert ha.alive
