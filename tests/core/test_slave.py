"""Tests for the Ignem slave: queueing, reference lists, do-not-harm."""

import pytest

from repro import IgnemConfig, JobSpec
from repro.storage import GB, MB
from repro.storage.presets import HDD_LATENCY

from .conftest import make_cluster


def migrate_and_run(cluster, paths, job_id, implicit=False):
    cluster.ignem_master.request_migration(paths, job_id, implicit_eviction=implicit)
    cluster.run()


def slave_holding(cluster, block_id):
    for slave in cluster.ignem_master.slaves():
        if slave.block_migrated(block_id):
            return slave
    return None


class TestMigrationBasics:
    def test_blocks_land_pinned_in_cache(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        for block in cluster.namenode.file_blocks("/f"):
            slave = slave_holding(cluster, block.block_id)
            assert slave is not None
            assert slave.datanode.cache.is_pinned(block.block_id)

    def test_one_block_at_a_time(self):
        """With a 10-block file assigned to one slave, migrations are
        serialized: total time ~= sum of sequential block reads at the
        mmap/mlock-limited migration rate."""
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 640 * MB)
        config = cluster.ignem_slaves["node0"].config
        rate = config.migration_read_rate or cluster.datanodes["node0"].disk.bandwidth
        start = cluster.env.now
        migrate_and_run(cluster, ["/f"], "j1")
        elapsed = cluster.env.now - start
        assert elapsed == pytest.approx(
            640 * MB / rate + 10 * HDD_LATENCY, rel=0.05
        )
        # Disk never saw concurrent migration streams.
        slave = cluster.ignem_slaves["node0"]
        assert slave.migrated_bytes == 640 * MB

    def test_migration_records_emitted(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 192 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        completed = cluster.collector.completed_migrations()
        assert len(completed) == 3
        assert all(m.job_id == "j1" for m in completed)
        assert all(m.end > m.start for m in completed)

    def test_duplicate_job_refs_do_not_duplicate_memory(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        migrate_and_run(cluster, ["/f"], "j1")
        holder = slave_holding(cluster, block.block_id)
        before = holder.migrated_bytes
        # Second job requests the same file; master may choose the same
        # replica, in which case memory must not double-count.
        cluster.ignem_master.request_migration(["/f"], "j2")
        cluster.run()
        total = sum(s.migrated_bytes for s in cluster.ignem_master.slaves())
        assert total <= 2 * before  # at most one extra replica copy
        assert holder.migrated_bytes == before


class TestReferenceLists:
    def test_refs_added_on_command_receipt(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.ignem_master.request_migration(["/f"], "j2")
        cluster.run()
        holders = [
            s
            for s in cluster.ignem_master.slaves()
            if s.reference_list(block.block_id)
        ]
        all_refs = set().union(
            *(s.reference_list(block.block_id) for s in holders)
        )
        assert all_refs == {"j1", "j2"}

    def test_block_kept_while_any_ref_remains(self):
        cluster = make_cluster(seed=21)
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        migrate_and_run(cluster, ["/f"], "j1")
        cluster.ignem_master.request_migration(["/f"], "j2")
        cluster.run()
        holder = slave_holding(cluster, block.block_id)
        if holder.reference_list(block.block_id) == {"j1", "j2"}:
            cluster.ignem_master.request_eviction(["/f"], "j1")
            cluster.run()
            assert holder.block_migrated(block.block_id)
            cluster.ignem_master.request_eviction(["/f"], "j2")
            cluster.run()
        else:
            cluster.ignem_master.request_eviction(["/f"], "j1")
            cluster.ignem_master.request_eviction(["/f"], "j2")
            cluster.run()
        assert not slave_holding(cluster, block.block_id)

    def test_explicit_eviction_frees_memory(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 256 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        assert sum(s.migrated_bytes for s in cluster.ignem_master.slaves()) > 0
        cluster.ignem_master.request_eviction(["/f"], "j1")
        cluster.run()
        assert sum(s.migrated_bytes for s in cluster.ignem_master.slaves()) == 0
        reasons = {e.reason for e in cluster.collector.evictions}
        assert reasons == {"explicit"}

    def test_implicit_eviction_on_read(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        migrate_and_run(cluster, ["/f"], "j1", implicit=True)
        holder = slave_holding(cluster, block.block_id)
        assert holder is not None

        def reader(env):
            read = cluster.client.read_block(block, holder.name, job_id="j1")
            yield read.done

        cluster.env.process(reader(cluster.env))
        cluster.run()
        assert not holder.block_migrated(block.block_id)
        assert any(e.reason == "implicit" for e in cluster.collector.evictions)

    def test_read_without_implicit_mode_keeps_block(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 64 * MB)
        block = cluster.namenode.file_blocks("/f")[0]
        migrate_and_run(cluster, ["/f"], "j1", implicit=False)
        holder = slave_holding(cluster, block.block_id)

        def reader(env):
            read = cluster.client.read_block(block, holder.name, job_id="j1")
            yield read.done

        cluster.env.process(reader(cluster.env))
        cluster.run()
        assert holder.block_migrated(block.block_id)

    def test_skipped_when_all_refs_gone_before_dequeue(self):
        """Eviction arriving before migration starts turns work into a skip."""
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/big", 1280 * MB)  # 20 blocks, ~10s to migrate
        cluster.client.create_file("/late", 64 * MB)
        cluster.ignem_master.request_migration(["/big"], "big-job")
        cluster.ignem_master.request_migration(["/late"], "late-job")
        # Evict the late job's input before its turn in the queue.
        cluster.ignem_master.request_eviction(["/late"], "late-job")
        cluster.run()
        outcomes = {
            m.outcome for m in cluster.collector.migrations if m.job_id == "late-job"
        }
        assert outcomes == {"skipped"}


class TestDoNotHarm:
    def test_buffer_full_makes_new_blocks_wait(self):
        config = IgnemConfig(buffer_capacity=128 * MB, rpc_latency=0.0)
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/a", 128 * MB)
        cluster.client.create_file("/b", 64 * MB)
        cluster.rm.register_job("j-a")
        cluster.rm.register_job("j-b")
        cluster.ignem_master.request_migration(["/a"], "j-a")
        cluster.ignem_master.request_migration(["/b"], "j-b")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        # Both jobs are live so nothing is reclaimed; the buffer fills and
        # the overflow block waits without evicting anything.  Smallest-
        # job-first migrates /b (64MB job) before /a's blocks, so the
        # buffer holds /b plus one of /a's two blocks.
        assert slave.migrated_bytes == 128 * MB
        for block in cluster.namenode.file_blocks("/b"):
            assert slave.block_migrated(block.block_id)
        a_migrated = [
            b
            for b in cluster.namenode.file_blocks("/a")
            if slave.block_migrated(b.block_id)
        ]
        assert len(a_migrated) == 1
        assert not cluster.collector.evictions

    def test_waiting_block_migrates_once_space_frees(self):
        config = IgnemConfig(buffer_capacity=128 * MB, rpc_latency=0.0)
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/a", 128 * MB)
        cluster.client.create_file("/b", 64 * MB)
        cluster.rm.register_job("j-a")
        cluster.rm.register_job("j-b")
        cluster.ignem_master.request_migration(["/a"], "j-a")
        cluster.ignem_master.request_migration(["/b"], "j-b")
        cluster.run()
        cluster.ignem_master.request_eviction(["/a"], "j-a")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        for block in cluster.namenode.file_blocks("/b"):
            assert slave.block_migrated(block.block_id)

    def test_ablation_evicts_larger_jobs_block(self):
        config = IgnemConfig(
            buffer_capacity=128 * MB, rpc_latency=0.0, do_not_harm=False
        )
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/big", 128 * MB)
        cluster.client.create_file("/small", 64 * MB)
        cluster.rm.register_job("j-big")
        cluster.rm.register_job("j-small")
        cluster.ignem_master.request_migration(["/big"], "j-big")
        cluster.run()
        cluster.ignem_master.request_migration(["/small"], "j-small")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        small_blocks = cluster.namenode.file_blocks("/small")
        assert all(slave.block_migrated(b.block_id) for b in small_blocks)
        assert any(e.reason == "preempted" for e in cluster.collector.evictions)

    def test_ablation_never_evicts_smaller_jobs(self):
        config = IgnemConfig(
            buffer_capacity=64 * MB, rpc_latency=0.0, do_not_harm=False
        )
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/small", 64 * MB)
        cluster.client.create_file("/big", 128 * MB)
        cluster.rm.register_job("j-small")
        cluster.rm.register_job("j-big")
        cluster.ignem_master.request_migration(["/small"], "j-small")
        cluster.run()
        cluster.ignem_master.request_migration(["/big"], "j-big")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        for block in cluster.namenode.file_blocks("/small"):
            assert slave.block_migrated(block.block_id)


class TestLivenessCleanup:
    def test_dead_job_refs_purged_under_pressure(self):
        config = IgnemConfig(
            buffer_capacity=128 * MB, cleanup_threshold=0.5, rpc_latency=0.0
        )
        cluster = make_cluster(ignem_config=config, num_nodes=1, replication=1)
        cluster.client.create_file("/dead", 128 * MB)
        cluster.client.create_file("/live", 64 * MB)
        # "dead-job" migrates but never sends an evict (it crashed) and is
        # not registered with the RM, so the liveness probe reports false.
        cluster.ignem_master.request_migration(["/dead"], "dead-job")
        cluster.run()
        cluster.ignem_master.request_migration(["/live"], "live-job")
        cluster.rm.register_job("live-job")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        for block in cluster.namenode.file_blocks("/live"):
            assert slave.block_migrated(block.block_id)
        assert any(e.reason == "cleanup" for e in cluster.collector.evictions)


class TestSlaveFailure:
    def test_failed_slave_discards_memory(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 256 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        victim = next(
            s for s in cluster.ignem_master.slaves() if s.migrated_bytes > 0
        )
        victim.fail()
        assert victim.migrated_bytes == 0
        assert victim.reference_count() == 0

    def test_restarted_slave_accepts_new_work(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        slave = cluster.ignem_slaves["node0"]
        slave.fail()
        slave.datanode.restart()
        slave.restart()
        migrate_and_run(cluster, ["/f"], "j2")
        assert slave.migrated_bytes == 64 * MB

    def test_dead_slave_ignores_commands(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 64 * MB)
        slave = cluster.ignem_slaves["node0"]
        slave.fail()
        cluster.ignem_master.request_migration(["/f"], "j1")
        cluster.run()
        assert slave.migrated_bytes == 0


class TestMemoryTimeline:
    def test_usage_timeline_tracks_migrate_and_evict(self):
        cluster = make_cluster(num_nodes=1, replication=1)
        cluster.client.create_file("/f", 128 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        cluster.ignem_master.request_eviction(["/f"], "j1")
        cluster.run()
        slave = cluster.ignem_slaves["node0"]
        values = [v for _, v in slave.usage_timeline]
        assert values[0] == 0.0
        assert max(values) == 128 * MB
        assert values[-1] == 0.0
        times = [t for t, _ in slave.usage_timeline]
        assert times == sorted(times)

    def test_memory_samples_recorded(self):
        cluster = make_cluster()
        cluster.client.create_file("/f", 128 * MB)
        migrate_and_run(cluster, ["/f"], "j1")
        assert cluster.collector.memory_samples
