"""Fixtures for Ignem core tests: a small cluster with Ignem enabled."""

import pytest

from repro.storage import GB
from tests.fixtures import make_ignem_cluster


@pytest.fixture
def cluster():
    """4-node cluster, replication 2, Ignem enabled with a small buffer."""
    return make_ignem_cluster(buffer_capacity=1 * GB)


@pytest.fixture
def master(cluster):
    return cluster.ignem_master


def make_cluster(ignem_config=None, **kwargs):
    return make_ignem_cluster(config=ignem_config, **kwargs)
