"""Fixtures for Ignem core tests: a small cluster with Ignem enabled."""

import pytest

from repro import IgnemConfig, build_paper_testbed
from repro.storage import GB, MB


@pytest.fixture
def cluster():
    """4-node cluster, replication 2, Ignem enabled with a small buffer."""
    c = build_paper_testbed(
        num_nodes=4,
        replication=2,
        seed=13,
    )
    c.enable_ignem(IgnemConfig(buffer_capacity=1 * GB, rpc_latency=0.0))
    return c


@pytest.fixture
def master(cluster):
    return cluster.ignem_master


def make_cluster(ignem_config=None, **kwargs):
    kwargs.setdefault("num_nodes", 4)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("seed", 13)
    c = build_paper_testbed(**kwargs)
    c.enable_ignem(ignem_config or IgnemConfig(rpc_latency=0.0))
    return c
