"""Tests for the Ignem master: mapping, replica choice, RPC, failure."""

import pytest

from repro import IgnemConfig
from repro.core import IgnemMaster, IgnemSlave
from repro.storage import GB, MB

from .conftest import make_cluster


class TestMigrationFanout:
    def test_each_block_migrated_on_exactly_one_replica(self, cluster, master):
        cluster.client.create_file("/f", 640 * MB)  # 10 blocks
        master.request_migration(["/f"], "j1")
        cluster.run()
        for block in cluster.namenode.file_blocks("/f"):
            holders = [
                s for s in master.slaves() if s.block_migrated(block.block_id)
            ]
            assert len(holders) == 1
            locations = cluster.namenode.get_block_locations(block.block_id)
            assert holders[0].name in locations

    def test_replica_choice_is_seeded_random(self):
        def chosen_nodes(seed):
            c = make_cluster(seed=seed)
            c.client.create_file("/f", 640 * MB)
            c.ignem_master.request_migration(["/f"], "j1")
            c.run()
            return tuple(
                s.name
                for block in c.namenode.file_blocks("/f")
                for s in c.ignem_master.slaves()
                if s.block_migrated(block.block_id)
            )

        assert chosen_nodes(1) == chosen_nodes(1)
        assert chosen_nodes(1) != chosen_nodes(2)

    def test_migration_request_counts(self, cluster, master):
        cluster.client.create_file("/f", 64 * MB)
        master.request_migration(["/f"], "j1")
        master.request_migration(["/f"], "j2")
        assert master.metrics.value("ignem.master.migration_requests") == 2

    def test_rpc_latency_delays_delivery(self):
        c = make_cluster(ignem_config=IgnemConfig(rpc_latency=0.5))
        c.client.create_file("/f", 64 * MB)
        c.ignem_master.request_migration(["/f"], "j1")
        # Before the RPC lands, no slave has queued work.
        c.env.run(until=0.1)
        assert all(s.pending_migrations == 0 for s in c.ignem_master.slaves())
        c.run()
        migrated = [
            s
            for block in c.namenode.file_blocks("/f")
            for s in c.ignem_master.slaves()
            if s.block_migrated(block.block_id)
        ]
        assert migrated

    def test_duplicate_slave_rejected(self, cluster, master):
        with pytest.raises(ValueError):
            master.attach_slave(master.slaves()[0])


class TestEviction:
    def test_eviction_goes_to_the_chosen_slave(self, cluster, master):
        cluster.client.create_file("/f", 128 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()
        assert any(s.migrated_bytes > 0 for s in master.slaves())
        master.request_eviction(["/f"], "j1")
        cluster.run()
        assert all(s.migrated_bytes == 0 for s in master.slaves())

    def test_eviction_for_missing_file_is_harmless(self, cluster, master):
        master.request_eviction(["/ghost"], "j1")  # must not raise

    def test_eviction_request_counts(self, cluster, master):
        cluster.client.create_file("/f", 64 * MB)
        master.request_eviction(["/f"], "j1")
        assert master.metrics.value("ignem.master.eviction_requests") == 1


class TestMasterFailure:
    def test_dead_master_drops_requests(self, cluster, master):
        cluster.client.create_file("/f", 64 * MB)
        master.fail()
        master.request_migration(["/f"], "j1")
        cluster.run()
        assert all(s.migrated_bytes == 0 for s in master.slaves())

    def test_restart_purges_slave_state(self, cluster, master):
        cluster.client.create_file("/f", 256 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()
        assert any(s.migrated_bytes > 0 for s in master.slaves())
        master.fail()
        master.restart()
        assert all(s.migrated_bytes == 0 for s in master.slaves())
        assert all(s.reference_count() == 0 for s in master.slaves())

    def test_new_master_handles_new_requests(self, cluster, master):
        cluster.client.create_file("/f", 128 * MB)
        master.fail()
        master.restart()
        master.request_migration(["/f"], "j2")
        cluster.run()
        assert any(s.migrated_bytes > 0 for s in master.slaves())
