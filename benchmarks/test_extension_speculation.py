"""Extension: speculative execution vs Ignem under a degraded disk.

Stragglers in disk-bound clusters often come from slow or contended
disks — exactly the reads Ignem moves to memory.  This bench injects one
degraded disk into the cluster and compares four configurations: plain
HDFS, HDFS + speculation, Ignem, and Ignem + speculation.  Ignem attacks
the root cause (the read itself) while speculation treats the symptom;
they compose.
"""

import pytest

from repro.cluster import build_paper_testbed
from repro.mapreduce import EngineConfig, JobSpec
from repro.storage import GB

from conftest import run_once


def _run(ignem: bool, speculative: bool):
    engine = EngineConfig(
        speculative_execution=speculative, speculative_slowdown=1.4
    )
    cluster = build_paper_testbed(seed=6, ignem=ignem, engine_config=engine)
    cluster.client.create_file("/in", 4 * GB)
    # One degraded disk (a failing drive running at 1/20th speed).
    sick = cluster.datanodes["node2"].disk
    sick.bandwidth = sick.bandwidth / 20
    job = cluster.engine.submit_job(JobSpec("scan", ("/in",), map_cpu_factor=2.0))
    cluster.run()
    return {"duration": job.duration, "attempts": job.speculative_attempts}


def test_extension_speculation(benchmark, record_result):
    def study():
        return {
            "hdfs": _run(ignem=False, speculative=False),
            "hdfs+spec": _run(ignem=False, speculative=True),
            "ignem": _run(ignem=True, speculative=False),
            "ignem+spec": _run(ignem=True, speculative=True),
        }

    results = run_once(benchmark, study)

    lines = ["Extension — speculation vs Ignem with one degraded disk (4GB scan)"]
    for name, stats in results.items():
        lines.append(
            f"{name:<10} duration={stats['duration']:7.1f}s "
            f"speculative-attempts={stats['attempts']}"
        )
    record_result("extension_speculation", "\n".join(lines))

    # Speculation rescues plain HDFS from the degraded disk...
    assert results["hdfs+spec"]["duration"] < results["hdfs"]["duration"]
    assert results["hdfs+spec"]["attempts"] > 0
    # ...Ignem attacks the same stragglers at the source...
    assert results["ignem"]["duration"] < results["hdfs"]["duration"]
    # ...and the combination is no worse than either alone.
    best_single = min(
        results["hdfs+spec"]["duration"], results["ignem"]["duration"]
    )
    assert results["ignem+spec"]["duration"] <= best_single * 1.1
