"""Ablation III-A2: migrate one replica vs every replica.

The paper migrates exactly one randomly chosen replica per block, arguing
the datacenter network makes a remote in-memory replica nearly as good as
a local one, while migrating all replicas wastes disk bandwidth and RAM.
"""

import pytest

from repro.core import IgnemConfig
from repro.experiments import clear_cache, run_swim

from conftest import run_once


def _run(replicas: int):
    clear_cache()
    run = run_swim(
        "ignem",
        seed=0,
        num_jobs=120,
        ignem_config=IgnemConfig(replicas_to_migrate=replicas),
    )
    collector = run.collector
    migrated_bytes = sum(m.nbytes for m in collector.completed_migrations())
    peak_memory = max(
        (s.migrated_bytes for s in collector.memory_samples), default=0.0
    )
    return {
        "mean_job": collector.mean_job_duration(),
        "migrated_bytes": migrated_bytes,
        "peak_memory": peak_memory,
    }


def test_ablation_replica_choice(benchmark, record_result):
    def study():
        return {1: _run(1), 3: _run(3)}

    results = run_once(benchmark, study)
    clear_cache()

    lines = ["Ablation — replicas migrated per block (SWIM, 120 jobs)"]
    for replicas, stats in sorted(results.items()):
        lines.append(
            f"replicas={replicas}: mean_job={stats['mean_job']:6.2f}s "
            f"disk-bytes-migrated={stats['migrated_bytes'] / 2**30:6.1f}GB "
            f"peak-node-memory={stats['peak_memory'] / 2**30:5.2f}GB"
        )
    record_result("ablation_replica_choice", "\n".join(lines))

    one, three = results[1], results[3]
    # Migrating all replicas multiplies disk work and memory footprint
    # (implicit eviction and capacity waits absorb part of the 3x)...
    assert three["migrated_bytes"] > 1.3 * one["migrated_bytes"]
    assert three["peak_memory"] > 1.3 * one["peak_memory"]
    # ...without a meaningful job-duration win (the paper's argument).
    assert three["mean_job"] >= one["mean_job"] * 0.97
