"""Fig 8: wordcount vs input size, with the Ignem+10s lead-time variant.

Paper shape:
* Ignem matches HDFS-Inputs-in-RAM while the input fits in lead-time,
  then its relative benefit decays (inflection ~2GB on their testbed);
* Ignem+10s is ~20% *worse* than HDFS at 1GB (the sleep dominates),
  crosses below HDFS as inputs grow, and at 4GB *outperforms* plain
  Ignem — introducing delay speeds up the job because Ignem reads the
  disk sequentially during the sleep, more efficiently than the
  concurrent mappers would.

Our crossovers land at larger inputs (see EXPERIMENTS.md) because the
simulated mmap/mlock path reads at full sequential bandwidth; every
qualitative feature reproduces.
"""

import pytest

from repro.experiments import fig8_wordcount_sweep

from conftest import run_once


def test_fig8_wordcount_leadtime(benchmark, record_result):
    sweep = run_once(benchmark, fig8_wordcount_sweep, seed=0)
    record_result("fig8_wordcount_leadtime", sweep.format())

    sizes = sweep.sizes()
    smallest, largest = sizes[0], sizes[-1]

    # Ignem matches the RAM bound at small sizes, then diverges.
    assert sweep.ignem_matches_ram_until() >= 2.0
    assert sweep.relative(largest, "ignem") > sweep.relative(largest, "ram") + 0.05

    # Ignem always beats plain HDFS (it never pays the sleep).
    for size in sizes:
        assert sweep.relative(size, "ignem") < 1.0

    # Ignem+10s: hurts badly at the smallest size...
    assert sweep.relative(smallest, "ignem+10s") > 1.2
    # ...crosses below HDFS as the input grows...
    assert sweep.relative(largest, "ignem+10s") < 1.0
    # ...and eventually overtakes plain Ignem (the IV-F headline).
    crossover = sweep.plus10_beats_ignem_at()
    assert crossover is not None, "Ignem+10s never overtook Ignem in the sweep"

    # The RAM bound's relative benefit grows with input size (reads are a
    # growing share of the job) — the Section IV-E observation.
    assert sweep.relative(largest, "ram") < sweep.relative(smallest, "ram")
