"""Ablation IV-C5: smallest-job-first vs FIFO migration order.

Paper: disabling prioritization costs ~2 percentage points of speedup —
nearly 15% of Ignem's benefit on the SWIM workload.
"""

import pytest

from repro.experiments import ablation_priority

from conftest import run_once


def test_ablation_priority_policy(benchmark, record_result):
    result = run_once(benchmark, ablation_priority, seed=0, num_jobs=200)

    lines = [
        "Ablation IV-C5 — migration-queue ordering",
        f"HDFS baseline:              {result.hdfs_mean:6.2f}s",
        f"Ignem (smallest-job-first): {result.priority_mean:6.2f}s "
        f"({result.priority_speedup:.1%})",
        f"Ignem (FIFO):               {result.fifo_mean:6.2f}s "
        f"({result.fifo_speedup:.1%})",
        f"benefit lost without prioritization: {result.benefit_lost:.0%} "
        f"(paper: ~15%)",
    ]
    record_result("ablation_priority_policy", "\n".join(lines))

    # Both policies beat plain HDFS; prioritization beats FIFO.
    assert result.priority_speedup > 0
    assert result.fifo_speedup > 0
    assert result.priority_mean <= result.fifo_mean
    assert 0.0 <= result.benefit_lost <= 0.6
