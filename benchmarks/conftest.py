"""Shared benchmark plumbing.

Each benchmark runs its experiment once (experiments are deterministic —
pytest-benchmark's multi-round statistics would just re-measure the same
events) and records the paper-style result table to
``benchmarks/results/<name>.txt`` as well as stdout, so the reproduced
rows survive output capture.
"""

import pathlib
import sys

import pytest

# benchmarks/ is a rootdir-less pytest dir: only this directory lands on
# sys.path.  Add the repo root so benchmarks can share tests.fixtures.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Persist one experiment's formatted output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
