"""Table III: standalone sort over 40GB of random text.

Paper: HDFS 147s; Ignem 114s (22% faster); HDFS-Inputs-in-RAM 75s (49%).
Even a job with heavy shuffle, compute, and output writes gains a lot
from faster reads — writes are absorbed by the buffer cache, but reads
block on the disk unless migrated first.
"""

import pytest

from repro.experiments import table3_sort

from conftest import run_once


def test_table3_sort(benchmark, record_result):
    table = run_once(benchmark, table3_sort, seed=0)
    record_result("table3_sort", table.format())

    assert table.value("hdfs") > table.value("ignem") > table.value("ram")
    assert 0.10 <= table.speedup("ignem") <= 0.40, "paper: 22%"
    assert 0.35 <= table.speedup("ram") <= 0.65, "paper: 49%"
    # Absolute durations land near the paper's testbed numbers.
    assert table.value("hdfs") == pytest.approx(147, rel=0.25)
    assert table.value("ram") == pytest.approx(75, rel=0.30)
