"""Ablation III-A3: the Do-not-harm rule under memory pressure.

With a deliberately tiny migration buffer, compare the paper's rule
(never evict migrated-but-unread blocks) against evict-for-newer.  Under
Do-not-harm, no migrated bytes are ever wasted by preemption; the
aggressive policy churns the buffer.
"""

import pytest

from repro.core import IgnemConfig
from repro.experiments import clear_cache, run_swim
from repro.storage import MB

from conftest import run_once


def _run(do_not_harm: bool):
    clear_cache()
    config = IgnemConfig(buffer_capacity=256 * MB, do_not_harm=do_not_harm)
    run = run_swim("ignem", seed=0, num_jobs=120, ignem_config=config)
    collector = run.collector
    preempted = sum(1 for e in collector.evictions if e.reason == "preempted")
    return {
        "mean_job": collector.mean_job_duration(),
        "preempted": preempted,
        "migrated": len(collector.completed_migrations()),
    }


def test_ablation_do_not_harm(benchmark, record_result):
    def study():
        return {"do-not-harm": _run(True), "evict-for-newer": _run(False)}

    results = run_once(benchmark, study)
    clear_cache()

    lines = ["Ablation — Do-not-harm rule (256MB migration buffer)"]
    for name, stats in results.items():
        lines.append(
            f"{name:<16} mean_job={stats['mean_job']:6.2f}s "
            f"migrations={stats['migrated']:4d} preemptions={stats['preempted']:3d}"
        )
    record_result("ablation_do_not_harm", "\n".join(lines))

    # The rule's defining property: zero preemptions.
    assert results["do-not-harm"]["preempted"] == 0
    # The aggressive policy actually preempts under this much pressure.
    assert results["evict-for-newer"]["preempted"] > 0
    # Do-not-harm performs at least comparably (the rule is provably
    # never worse in expectation — paper III-A3).
    assert (
        results["do-not-harm"]["mean_job"]
        <= results["evict-for-newer"]["mean_job"] * 1.05
    )
