"""Fig 5: reduction in mean job duration, binned by input size.

Paper: Ignem speeds up small (<=64MB), medium (64-512MB) and large
(>512MB) jobs by 8.8%, 7.7% and 25%; with inputs in RAM, large jobs
improve by ~60% — larger jobs are more sensitive to read optimization.
"""

import pytest

from repro.experiments import fig5_size_bins

from conftest import run_once


def test_fig5_swim_size_bins(benchmark, record_result):
    results = run_once(benchmark, fig5_size_bins, seed=0, num_jobs=200)

    lines = ["Fig 5 — reduction in mean job duration by input-size bin"]
    for row in results:
        lines.append(
            f"{row.bin_name:<7} n={row.num_jobs:<4} hdfs={row.hdfs_mean:7.1f}s "
            f"ignem={row.ignem_reduction:6.1%} ram={row.ram_reduction:6.1%}"
        )
    record_result("fig5_swim_size_bins", "\n".join(lines))

    by_bin = {row.bin_name: row for row in results}
    assert set(by_bin) == {"small", "medium", "large"}

    # Ignem helps every bin, and large jobs benefit the most.
    for row in results:
        assert row.ignem_reduction > 0
    assert by_bin["large"].ignem_reduction > by_bin["small"].ignem_reduction
    # With inputs in RAM, large jobs improve dramatically (paper ~60%).
    assert by_bin["large"].ram_reduction >= 0.4
    # Small jobs: Ignem approaches the RAM bound (the paper: "its
    # performance is very close to that of HDFS-Inputs-in-RAM").
    assert by_bin["small"].ignem_reduction >= 0.4 * by_bin["small"].ram_reduction
