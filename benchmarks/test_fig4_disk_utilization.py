"""Fig 4: per-server disk-bandwidth utilization over 24 hours.

Paper: the mean utilization of 40 randomly chosen servers never exceeds
~5%, and the overall mean over 24h is ~3.1% — abundant residual
bandwidth for migration.
"""

import pytest

from repro.experiments import run_utilization_study

from conftest import run_once


def test_fig4_disk_utilization(benchmark, record_result):
    study = run_once(
        benchmark, run_utilization_study, seed=0, num_servers=40
    )

    lines = [study.format()]
    # Individual server timelines spike far above the 40-server mean,
    # exactly like the single-server traces in Fig 4.
    peaks = sorted(t.peak for t in study.per_server.values())
    lines.append(
        f"per-server peak utilization: min={peaks[0]:.1%} "
        f"median={peaks[len(peaks) // 2]:.1%} max={peaks[-1]:.1%}"
    )
    record_result("fig4_disk_utilization", "\n".join(lines))

    assert study.overall_mean == pytest.approx(0.031, abs=0.01)
    assert study.mean_timeline.peak <= 0.08
    # Single servers are bursty even though the mean is tiny.
    assert peaks[-1] > 3 * study.mean_timeline.peak
    # One 5-minute window per 300s over 24h.
    assert len(study.mean_timeline.utilization) == 24 * 3600 // 300
