"""Extension (paper Section V, Aqueduct): bounded-impact migration.

Aqueduct throttles migration to bound its impact on foreground work;
Ignem is purely work-conserving.  This bench quantifies the trade-off on
the sort workload: the throttle protects foreground reads slightly but
forfeits migration opportunity.
"""

import pytest

from repro.core import IgnemConfig
from repro.storage import GB
from repro.workloads.sort import make_sort_spec

from conftest import run_once
from tests.fixtures import make_sort_bench_cluster


def _run(busy_threshold):
    cluster = make_sort_bench_cluster(
        ignem_config=IgnemConfig(busy_threshold=busy_threshold)
    )
    job = cluster.engine.submit_job(make_sort_spec(20 * GB))
    cluster.run()
    collector = cluster.collector
    disk_reads = [r.duration for r in collector.block_reads if r.source != "ram"]
    return {
        "duration": job.duration,
        "migrated": len(collector.completed_migrations()),
        "mean_disk_read": sum(disk_reads) / len(disk_reads) if disk_reads else 0.0,
    }


def test_extension_busy_throttle(benchmark, record_result):
    def study():
        return {
            "work-conserving": _run(None),
            "throttle@8": _run(8),
            "throttle@4": _run(4),
        }

    results = run_once(benchmark, study)

    lines = ["Extension — Aqueduct-style migration throttle (20GB sort)"]
    for name, stats in results.items():
        lines.append(
            f"{name:<16} duration={stats['duration']:7.1f}s "
            f"migrated={stats['migrated']:4d} "
            f"mean-disk-read={stats['mean_disk_read']:5.2f}s"
        )
    record_result("extension_busy_throttle", "\n".join(lines))

    # Throttling can only reduce migration volume...
    assert results["throttle@4"]["migrated"] <= results["work-conserving"]["migrated"]
    # ...and the paper's work-conserving choice is at least as fast for
    # the job overall (migration opportunity outweighs the contention).
    assert (
        results["work-conserving"]["duration"]
        <= results["throttle@4"]["duration"] * 1.05
    )
