"""Fig 2: mapper task runtime CDFs by storage medium.

Paper: average mapper runtime from RAM is ~23x smaller than from HDD —
smaller than the 160x block-read gap because tasks have fixed overheads
unrelated to reading.
"""

import pytest

from repro.experiments import run_block_read_study

from conftest import run_once


@pytest.fixture(scope="module")
def study():
    return run_block_read_study(seed=0, num_jobs=60)


def test_fig2_mapper_runtime_cdf(benchmark, study, record_result):
    result = run_once(benchmark, lambda: study)

    lines = ["Fig 2 — mapper runtime CDF by medium (p50/p90/p99 seconds)"]
    for medium in ("hdd", "ssd", "ram"):
        values, fractions = result.mapper_cdf(medium)
        p = lambda q: values[min(len(values) - 1, int(q * len(values)))]
        lines.append(
            f"{medium:<4} p50={p(0.50):7.3f} p90={p(0.90):7.3f} p99={p(0.99):7.3f}"
        )
    mapper_ratio = result.mapper_ratio("hdd")
    lines.append(f"RAM mappers are {mapper_ratio:.0f}x faster than HDD (paper ~23x)")
    record_result("fig2_mapper_runtime_cdf", "\n".join(lines))

    # Shape: big task-level win, but diluted relative to the raw read gap.
    assert 8 <= mapper_ratio <= 60, f"mapper ratio {mapper_ratio:.0f}x (paper ~23x)"
    assert mapper_ratio < result.read_ratio("hdd")

    # CDFs are monotone in [0, 1].
    values, fractions = result.mapper_cdf("hdd")
    assert values == sorted(values)
    assert fractions[-1] == pytest.approx(1.0)
