"""Fig 1: HDFS block read times from HDD, SSD, and RAM.

Paper: reads from RAM are on average ~160x faster than from HDD and ~7x
faster than from SSD.
"""

import pytest

from repro.experiments import run_block_read_study

from conftest import run_once


@pytest.fixture(scope="module")
def study():
    return run_block_read_study(seed=0, num_jobs=60)


def test_fig1_block_read_histograms(benchmark, study, record_result):
    result = run_once(benchmark, lambda: study)
    record_result("fig1_block_reads", result.format())

    # Shape: RAM reads are orders of magnitude faster than HDD and several
    # times faster than SSD.
    hdd_ratio = result.read_ratio("hdd")
    ssd_ratio = result.read_ratio("ssd")
    assert 60 <= hdd_ratio <= 400, f"RAM-vs-HDD ratio {hdd_ratio:.0f}x (paper ~160x)"
    assert 3 <= ssd_ratio <= 15, f"RAM-vs-SSD ratio {ssd_ratio:.1f}x (paper ~7x)"

    # Histograms are well-formed relative frequencies.
    edges, freqs = result.read_histogram("hdd")
    assert len(edges) == len(freqs) + 1
    assert sum(freqs) == pytest.approx(1.0)
