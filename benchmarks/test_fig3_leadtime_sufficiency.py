"""Fig 3: lead-time sufficiency over the Google trace.

Paper: for 81% of jobs, lead-time exceeds total disk-read time, so their
entire inputs could migrate to memory before the first task starts.
"""

import pytest

from repro.experiments import run_leadtime_study

from conftest import run_once


def test_fig3_leadtime_sufficiency(benchmark, record_result):
    study = run_once(benchmark, run_leadtime_study, seed=0, num_jobs=10_000)
    record_result("fig3_leadtime_sufficiency", study.format())

    assert study.sufficient_fraction == pytest.approx(0.81, abs=0.03)
    # The queueing-delay marginals the paper reports for the trace.
    assert study.analysis.mean_lead_time == pytest.approx(8.8, rel=0.15)
    assert study.analysis.median_lead_time == pytest.approx(1.8, rel=0.15)

    # The CDF curve itself (the Fig 3 series).
    ratios, fractions = study.cdf()
    assert ratios == sorted(ratios)
    assert 0 < fractions[-1] <= 1.0
