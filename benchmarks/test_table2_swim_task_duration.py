"""Table II: mean mapper duration over the SWIM workload.

Paper: HDFS 6.44s; Ignem 4.03s (38% faster); HDFS-Inputs-in-RAM 0.28s
(96%).  Task-level gains exceed job-level gains because mappers carry
few overheads unrelated to reading.
"""

import pytest

from repro.experiments import table1_job_duration, table2_task_duration

from conftest import run_once


def test_table2_swim_task_duration(benchmark, record_result):
    table = run_once(benchmark, table2_task_duration, seed=0, num_jobs=200)
    record_result("table2_swim_task_duration", table.format())

    assert table.value("hdfs") > table.value("ignem") > table.value("ram")
    assert 0.25 <= table.speedup("ignem") <= 0.60, "paper: 38%"
    assert table.speedup("ram") >= 0.85, "paper: 96%"
    # Mapper absolute times land near the paper's 6.44s / 0.28s.
    assert table.value("hdfs") == pytest.approx(6.44, rel=0.4)
    assert table.value("ram") == pytest.approx(0.28, rel=1.0)

    # Task-level speedup is amplified relative to job-level (paper's
    # framing of Table II vs Table I).
    job_table = table1_job_duration(seed=0, num_jobs=200)
    assert table.speedup("ignem") > job_table.speedup("ignem")
