"""Fig 6: per-block read durations under HDFS vs Ignem.

Paper: Ignem reduces the mean block read time by ~40%, with ~60% of
blocks successfully migrated and read from memory.
"""

import pytest

from repro.experiments import fig6_block_read_cdf
from repro.metrics.stats import mean

from conftest import run_once


def test_fig6_swim_block_reads(benchmark, record_result):
    result = run_once(benchmark, fig6_block_read_cdf, seed=0, num_jobs=200)

    lines = [
        "Fig 6 — block read durations (HDFS vs Ignem)",
        f"mean read: hdfs={mean(result.hdfs_durations):.2f}s "
        f"ignem={mean(result.ignem_durations):.2f}s "
        f"({result.mean_reduction:.0%} reduction; paper ~40%)",
        f"blocks read from memory under Ignem: "
        f"{result.migrated_fraction:.0%} (paper ~60%)",
    ]
    values, fractions = result.ignem_cdf()
    p50 = values[int(0.5 * len(values))]
    lines.append(f"Ignem read p50: {p50:.3f}s (migrated reads are ~instant)")
    record_result("fig6_swim_block_reads", "\n".join(lines))

    assert 0.25 <= result.mean_reduction <= 0.65, "paper: ~40%"
    assert 0.45 <= result.migrated_fraction <= 0.75, "paper: ~60%"
    # The CDF shows a large fast-read mass: at least the migrated
    # fraction of reads complete near-instantly (<1s).
    fast = sum(1 for v in result.ignem_durations if v < 1.0)
    assert fast / len(result.ignem_durations) >= result.migrated_fraction * 0.9
