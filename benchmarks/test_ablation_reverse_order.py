"""Ablation: tail-first vs scan-order migration within a job.

Our implementation migrates each job's blocks in reverse scan order so
the migration worker never races the mappers over the same prefix (see
DESIGN.md).  This bench quantifies that choice on the sort workload:
scan-order migration completes blocks that a mapper is about to (or
already did) read, wasting disk bandwidth.
"""

import pytest

from repro.core import IgnemConfig
from repro.storage import GB
from repro.workloads.sort import make_sort_spec

from conftest import run_once
from tests.fixtures import make_sort_bench_cluster


def _run(reverse: bool):
    cluster = make_sort_bench_cluster(
        ignem_config=IgnemConfig(reverse_within_job=reverse)
    )
    job = cluster.engine.submit_job(make_sort_spec(20 * GB))
    cluster.run()
    collector = cluster.collector
    migrated = {m.block_id for m in collector.completed_migrations()}
    ram_read = {r.block_id for r in collector.block_reads if r.source == "ram"}
    return {
        "duration": job.duration,
        "migrated": len(migrated),
        "wasted": len(migrated - ram_read),
    }


def test_ablation_reverse_order(benchmark, record_result):
    def study():
        return {"tail-first": _run(True), "scan-order": _run(False)}

    results = run_once(benchmark, study)

    lines = ["Ablation — within-job migration order (20GB sort)"]
    for name, stats in results.items():
        lines.append(
            f"{name:<10} duration={stats['duration']:7.1f}s "
            f"migrated={stats['migrated']:4d} wasted={stats['wasted']:4d}"
        )
    record_result("ablation_reverse_order", "\n".join(lines))

    # Tail-first wastes (almost) nothing; scan-order wastes plenty.
    assert results["tail-first"]["wasted"] <= results["scan-order"]["wasted"]
    assert results["tail-first"]["duration"] <= results["scan-order"]["duration"] * 1.02
