"""Fig 7: per-server memory usage — Ignem vs the hypothetical scheme.

Paper: compared to a hypothetical scheme that migrates instantly at
submission and evicts at completion, Ignem's memory footprint is ~2.6x
lower on average — while still delivering ~60% of the achievable
speedup.  Eviction as soon as data is consumed (implicit mode) keeps the
footprint small.
"""

import pytest

from repro.experiments import fig7_memory_footprint
from repro.storage import MB

from conftest import run_once


def test_fig7_memory_footprint(benchmark, record_result):
    result = run_once(benchmark, fig7_memory_footprint, seed=0, num_jobs=200)

    lines = [
        "Fig 7 — per-server migrated-memory footprint",
        f"Ignem mean (non-zero periods):        "
        f"{result.ignem_mean_bytes / MB:8.0f} MB",
        f"hypothetical instantaneous scheme:    "
        f"{result.hypothetical_mean_bytes / MB:8.0f} MB",
        f"footprint ratio: {result.footprint_ratio:.1f}x lower "
        f"(paper: 2.6x)",
    ]
    record_result("fig7_memory_footprint", "\n".join(lines))

    # Shape: Ignem uses several times less memory than the hypothetical
    # migrate-at-submit/evict-at-completion scheme.
    assert result.footprint_ratio >= 1.5, "paper: 2.6x"
    assert result.ignem_mean_bytes > 0
    assert result.hypothetical_mean_bytes > result.ignem_mean_bytes
    # Both schemes' non-zero samples exist (the Fig 7 histograms).
    assert result.ignem_nonzero_samples
    assert result.hypothetical_nonzero_samples
