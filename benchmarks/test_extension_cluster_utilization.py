"""Extension: validate the Fig 4 residual-bandwidth claim on our own
simulated testbed.

The paper measures disk utilization in the Google trace; here we probe
the simulated 8-node cluster *while it runs the SWIM workload* and show
the same headline: mean disk utilization is low, leaving abundant
residual bandwidth — which is precisely the resource Ignem converts into
speedup.
"""

import pytest

from repro.cluster import build_paper_testbed
from repro.experiments.swim_runs import SWIM_ENGINE
from repro.storage.device import UtilizationProbe
from repro.workloads import swim

from conftest import run_once


def _run():
    cluster = build_paper_testbed(seed=0, engine_config=SWIM_ENGINE)
    jobs = swim.SwimGenerator(seed=0).generate(num_jobs=120)
    swim.materialize(cluster, jobs)
    probes = [
        UtilizationProbe(cluster.env, dn.disk, window=30.0)
        for dn in cluster.datanodes.values()
    ]
    specs, arrivals = swim.to_specs(jobs)
    done = cluster.engine.run_workload(specs, arrivals)
    cluster.run(until=done)
    horizon = cluster.env.now

    per_disk_mean = [
        sum(p.samples) / len(p.samples) for p in probes if p.samples
    ]
    per_disk_peak = [max(p.samples) for p in probes if p.samples]
    return {
        "horizon": horizon,
        "mean": sum(per_disk_mean) / len(per_disk_mean),
        "peak": max(per_disk_peak),
    }


def test_extension_cluster_utilization(benchmark, record_result):
    stats = run_once(benchmark, _run)

    lines = [
        "Extension — disk utilization of the simulated testbed under SWIM",
        f"workload horizon: {stats['horizon']:.0f}s",
        f"mean disk utilization: {stats['mean']:.1%} "
        f"(the Google trace's figure was ~3%)",
        f"peak 30s-window utilization on any disk: {stats['peak']:.1%}",
    ]
    record_result("extension_cluster_utilization", "\n".join(lines))

    # Low mean, bursty peaks: the Fig 4 shape on our own cluster.
    assert stats["mean"] < 0.5
    assert stats["peak"] > 2 * stats["mean"]
