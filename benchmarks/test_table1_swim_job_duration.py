"""Table I: mean job duration over the 200-job SWIM workload.

Paper: HDFS 14.4s; Ignem 12.7s (12% speedup); HDFS-Inputs-in-RAM 11.4s
(21% — the upper bound).  Ignem realizes ~60% of the bound.
"""

import pytest

from repro.experiments import table1_job_duration

from conftest import run_once


def test_table1_swim_job_duration(benchmark, record_result):
    table = run_once(benchmark, table1_job_duration, seed=0, num_jobs=200)
    text = table.format() + (
        f"\nIgnem realizes {table.fraction_of_upper_bound():.0%} of the "
        f"inputs-in-RAM upper bound (paper: ~60%)"
    )
    record_result("table1_swim_job_duration", text)

    # Ordering: HDFS slowest, RAM fastest, Ignem in between.
    assert table.value("hdfs") > table.value("ignem") > table.value("ram")
    # Rough factors.
    assert 0.05 <= table.speedup("ignem") <= 0.25, "paper: 12%"
    assert 0.10 <= table.speedup("ram") <= 0.35, "paper: 21%"
    assert 0.3 <= table.fraction_of_upper_bound() <= 0.8, "paper: ~60%"
    # Absolute scale is in the right ballpark of the paper's testbed.
    assert 8 <= table.value("hdfs") <= 25
