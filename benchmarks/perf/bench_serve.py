"""Wall-clock benchmark for the interactive serving workload.

Measures ``run_serve`` end to end (cluster build, catalog load, the
full 1200-request replay, and — for the ``heat`` policy — the
popularity migrator's tick loop) at the default experiment shape, once
per policy, and writes the result to
``benchmarks/perf/BENCH_serve.json``.  The simulated p99 per policy is
recorded alongside the wall time so the file doubles as a perf *and*
quality snapshot.

Methodology matches ``bench_scale.py``: every measurement runs in a
fresh subprocess, the best of N back-to-back repetitions within a
subprocess is kept (minimum is the least-noise estimator for a
deterministic CPU-bound workload), and a baseline git ref — when one
that contains the workload exists — is interleaved round-by-round.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py
    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        --requests 400 --rounds 5 --reps 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_serve.json"

POLICIES = ("none", "hint", "heat")

_SNIPPET = r"""
import sys, time
sys.path.insert(0, {src!r})
from repro.workloads.serve import ServeConfig, run_serve
config = ServeConfig(policy={policy!r}, num_requests={requests}, seed={seed})
best = float("inf")
p99 = 0.0
for _ in range({reps}):
    t0 = time.perf_counter()
    result = run_serve(config)
    best = min(best, time.perf_counter() - t0)
    p99 = result.p99
print(best, p99)
"""


def measure_once(
    tree: pathlib.Path, policy: str, requests: int, seed: int, reps: int
):
    """Best-of-``reps`` wall seconds (and simulated p99) in one subprocess."""
    code = _SNIPPET.format(
        src=str(tree / "src"),
        policy=policy,
        requests=requests,
        seed=seed,
        reps=reps,
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    seconds, p99 = out.stdout.split()
    return float(seconds), float(p99)


def checkout_baseline(ref: str) -> pathlib.Path:
    tree = pathlib.Path(tempfile.mkdtemp(prefix="bench-baseline-"))
    subprocess.run(
        ["git", "worktree", "add", "--detach", "--force", str(tree), ref],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
    )
    return tree


def remove_baseline(tree: pathlib.Path) -> None:
    subprocess.run(
        ["git", "worktree", "remove", "--force", str(tree)],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    shutil.rmtree(tree, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--reps", type=int, default=1)
    parser.add_argument(
        "--baseline-ref",
        default=None,
        help=(
            "git ref to measure against, interleaved round-by-round "
            "(the ref must already contain repro.workloads.serve)"
        ),
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.rounds < 1 or args.reps < 1:
        parser.error("--rounds and --reps must be >= 1")

    baseline_tree = None
    if args.baseline_ref:
        try:
            baseline_tree = checkout_baseline(args.baseline_ref)
        except subprocess.CalledProcessError as error:
            stderr = (error.stderr or b"").decode(errors="replace").strip()
            parser.error(
                f"cannot check out baseline ref {args.baseline_ref!r}: {stderr}"
            )

    current_rounds: dict = {policy: [] for policy in POLICIES}
    baseline_rounds: dict = {policy: [] for policy in POLICIES}
    p99s: dict = {}
    try:
        for round_index in range(args.rounds):
            for policy in POLICIES:
                if baseline_tree is not None:
                    seconds, _ = measure_once(
                        baseline_tree, policy, args.requests, args.seed, args.reps
                    )
                    baseline_rounds[policy].append(seconds)
                seconds, p99 = measure_once(
                    REPO_ROOT, policy, args.requests, args.seed, args.reps
                )
                current_rounds[policy].append(seconds)
                p99s[policy] = p99
            line = "  ".join(
                f"{policy} {current_rounds[policy][-1]:.1f}s"
                for policy in POLICIES
            )
            print(f"round {round_index}: {line}", flush=True)
    finally:
        if baseline_tree is not None:
            remove_baseline(baseline_tree)

    result = {
        "workload": (
            f"run_serve(ServeConfig(policy=<each>, "
            f"num_requests={args.requests}, seed={args.seed}))"
        ),
        "methodology": (
            "fresh subprocess per (round, policy); best of "
            f"{args.reps} back-to-back repetitions per round; "
            f"{args.rounds} rounds"
            + (", interleaved with the baseline tree" if args.baseline_ref else "")
        ),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "measured_at": time.strftime("%Y-%m-%d"),
        "current": {
            policy: {
                "rounds_seconds": [
                    round(s, 3) for s in current_rounds[policy]
                ],
                "best_seconds": round(min(current_rounds[policy]), 3),
                "sim_p99_seconds": round(p99s[policy], 4),
            }
            for policy in POLICIES
        },
    }
    if args.baseline_ref and any(baseline_rounds.values()):
        baseline = {"ref": args.baseline_ref}
        for policy in POLICIES:
            baseline[policy] = {
                "rounds_seconds": [
                    round(s, 3) for s in baseline_rounds[policy]
                ],
                "best_seconds": round(min(baseline_rounds[policy]), 3),
            }
        result["baseline"] = baseline

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
