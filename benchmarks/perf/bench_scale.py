"""Wall-clock benchmark for the trace-scale replay.

Measures ``run_scale_replay`` end to end (cluster build, dataset
materialization, and the full replay) at the headline 10k-node /
100k-job shape and writes the result to
``benchmarks/perf/BENCH_scale.json``.

Methodology matches ``bench_swim.py``: every measurement runs in a
fresh subprocess, the best of N back-to-back repetitions within a
subprocess is kept (minimum is the least-noise estimator for a
deterministic CPU-bound workload), and a baseline git ref — when one
that contains the harness exists — is interleaved round-by-round.  The
defaults differ only in scale: one repetition per round and three
rounds, because a single replay runs for about a minute.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_scale.py
    PYTHONPATH=src python benchmarks/perf/bench_scale.py \
        --nodes 1000 --jobs 10000 --rounds 5 --reps 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_scale.json"

_SNIPPET = r"""
import sys
sys.path.insert(0, {src!r})
from repro.workloads.scale import ScaleConfig, run_scale_replay
config = ScaleConfig(num_nodes={nodes}, num_jobs={jobs}, seed={seed})
best = float("inf")
events = 0
for _ in range({reps}):
    result = run_scale_replay(config)
    best = min(best, result.wall_seconds)
    events = result.events
print(best, events)
"""


def measure_once(
    tree: pathlib.Path, nodes: int, jobs: int, seed: int, reps: int
):
    """Best-of-``reps`` wall seconds (and event count) in one subprocess."""
    code = _SNIPPET.format(
        src=str(tree / "src"), nodes=nodes, jobs=jobs, seed=seed, reps=reps
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    seconds, events = out.stdout.split()
    return float(seconds), int(events)


def checkout_baseline(ref: str) -> pathlib.Path:
    tree = pathlib.Path(tempfile.mkdtemp(prefix="bench-baseline-"))
    subprocess.run(
        ["git", "worktree", "add", "--detach", "--force", str(tree), ref],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
    )
    return tree


def remove_baseline(tree: pathlib.Path) -> None:
    subprocess.run(
        ["git", "worktree", "remove", "--force", str(tree)],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    shutil.rmtree(tree, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--jobs", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--reps", type=int, default=1)
    parser.add_argument(
        "--baseline-ref",
        default=None,
        help=(
            "git ref to measure against, interleaved round-by-round "
            "(the ref must already contain repro.workloads.scale)"
        ),
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.rounds < 1 or args.reps < 1:
        parser.error("--rounds and --reps must be >= 1")

    baseline_tree = None
    if args.baseline_ref:
        try:
            baseline_tree = checkout_baseline(args.baseline_ref)
        except subprocess.CalledProcessError as error:
            stderr = (error.stderr or b"").decode(errors="replace").strip()
            parser.error(
                f"cannot check out baseline ref {args.baseline_ref!r}: {stderr}"
            )

    current_rounds: list = []
    baseline_rounds: list = []
    events = 0
    try:
        for round_index in range(args.rounds):
            if baseline_tree is not None:
                seconds, _ = measure_once(
                    baseline_tree, args.nodes, args.jobs, args.seed, args.reps
                )
                baseline_rounds.append(seconds)
            seconds, events = measure_once(
                REPO_ROOT, args.nodes, args.jobs, args.seed, args.reps
            )
            current_rounds.append(seconds)
            line = f"round {round_index}: current {current_rounds[-1]:.1f}s"
            if baseline_rounds:
                line += f"  baseline {baseline_rounds[-1]:.1f}s"
            print(line, flush=True)
    finally:
        if baseline_tree is not None:
            remove_baseline(baseline_tree)

    best = min(current_rounds)
    result = {
        "workload": (
            f"run_scale_replay(ScaleConfig(num_nodes={args.nodes}, "
            f"num_jobs={args.jobs}, seed={args.seed}))"
        ),
        "methodology": (
            "fresh subprocess per round; best of "
            f"{args.reps} back-to-back repetitions per round; "
            f"{args.rounds} rounds"
            + (", interleaved with the baseline tree" if args.baseline_ref else "")
        ),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "measured_at": time.strftime("%Y-%m-%d"),
        "current": {
            "rounds_seconds": [round(s, 3) for s in current_rounds],
            "best_seconds": round(best, 3),
            "events": events,
            "events_per_second": round(events / best, 1),
        },
    }
    if baseline_rounds:
        result["baseline"] = {
            "ref": args.baseline_ref,
            "rounds_seconds": [round(s, 3) for s in baseline_rounds],
            "best_seconds": round(min(baseline_rounds), 3),
        }
        result["speedup"] = round(min(baseline_rounds) / best, 2)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if "speedup" in result:
        print(f"speedup vs {args.baseline_ref}: {result['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
