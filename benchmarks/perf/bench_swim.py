"""Wall-clock benchmark for the 200-job SWIM run.

Measures how long ``run_swim("ignem", num_jobs=200)`` takes end to end
(cluster build, workload generation, and the full simulation) and writes
the result to ``benchmarks/perf/BENCH_swim.json``.

Methodology
-----------
Timing noise on shared machines easily reaches +/-15%, which swamps the
effects being measured, so the harness:

* runs every measurement in a **fresh subprocess** (no warm caches or
  allocator state leaking between trees);
* takes the **best of N back-to-back repetitions** within a subprocess
  (the minimum is the least-noise estimator for a deterministic,
  CPU-bound workload — all noise is additive);
* when comparing against a baseline git ref, **interleaves** the two
  trees round-by-round so slow machine phases hit both sides equally.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_swim.py
    PYTHONPATH=src python benchmarks/perf/bench_swim.py \
        --baseline-ref <commit> --rounds 6 --reps 4
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_swim.json"

_SNIPPET = r"""
import sys, time
sys.path.insert(0, {src!r})
from repro.experiments.swim_runs import run_swim, clear_cache
best = float("inf")
for _ in range({reps}):
    clear_cache()
    start = time.perf_counter()
    run_swim({mode!r}, num_jobs={num_jobs})
    best = min(best, time.perf_counter() - start)
print(best)
"""


def measure_once(tree: pathlib.Path, mode: str, num_jobs: int, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds in one fresh subprocess."""
    code = _SNIPPET.format(
        src=str(tree / "src"), reps=reps, mode=mode, num_jobs=num_jobs
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return float(out.stdout.strip())


def checkout_baseline(ref: str) -> pathlib.Path:
    """Materialize ``ref`` as a detached git worktree; caller removes it."""
    tree = pathlib.Path(tempfile.mkdtemp(prefix="bench-baseline-"))
    subprocess.run(
        ["git", "worktree", "add", "--detach", "--force", str(tree), ref],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
    )
    return tree


def remove_baseline(tree: pathlib.Path) -> None:
    subprocess.run(
        ["git", "worktree", "remove", "--force", str(tree)],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    shutil.rmtree(tree, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", default="ignem", choices=("hdfs", "ignem", "ram"))
    parser.add_argument("--num-jobs", type=int, default=200)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--reps", type=int, default=4)
    parser.add_argument(
        "--baseline-ref",
        default=None,
        help="git ref to measure against, interleaved round-by-round",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.rounds < 1 or args.reps < 1:
        parser.error("--rounds and --reps must be >= 1")

    baseline_tree = None
    if args.baseline_ref:
        try:
            baseline_tree = checkout_baseline(args.baseline_ref)
        except subprocess.CalledProcessError as error:
            stderr = (error.stderr or b"").decode(errors="replace").strip()
            parser.error(
                f"cannot check out baseline ref {args.baseline_ref!r}: {stderr}"
            )

    current_rounds: list = []
    baseline_rounds: list = []
    try:
        for round_index in range(args.rounds):
            if baseline_tree is not None:
                baseline_rounds.append(
                    measure_once(baseline_tree, args.mode, args.num_jobs, args.reps)
                )
            current_rounds.append(
                measure_once(REPO_ROOT, args.mode, args.num_jobs, args.reps)
            )
            line = f"round {round_index}: current {current_rounds[-1]:.3f}s"
            if baseline_rounds:
                line += f"  baseline {baseline_rounds[-1]:.3f}s"
            print(line, flush=True)
    finally:
        if baseline_tree is not None:
            remove_baseline(baseline_tree)

    result = {
        "workload": f"run_swim({args.mode!r}, num_jobs={args.num_jobs})",
        "methodology": (
            "fresh subprocess per round; best of "
            f"{args.reps} back-to-back repetitions per round; "
            f"{args.rounds} rounds"
            + (", interleaved with the baseline tree" if args.baseline_ref else "")
        ),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "measured_at": time.strftime("%Y-%m-%d"),
        "current": {
            "rounds_seconds": [round(s, 3) for s in current_rounds],
            "best_seconds": round(min(current_rounds), 3),
        },
    }
    if baseline_rounds:
        result["baseline"] = {
            "ref": args.baseline_ref,
            "rounds_seconds": [round(s, 3) for s in baseline_rounds],
            "best_seconds": round(min(baseline_rounds), 3),
        }
        result["speedup"] = round(min(baseline_rounds) / min(current_rounds), 2)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if "speedup" in result:
        print(f"speedup vs {args.baseline_ref}: {result['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
