"""Perf smoke test: catch large kernel/scheduler slowdowns in CI.

The 200-job SWIM run completes in ~0.35s on a 2026 dev box after the
locality-index + kernel optimization pass (it took ~1.0s before it; see
``BENCH_swim.json``).  The ceiling below leaves generous headroom for
slower CI machines while still failing if the run regresses by more
than ~2x on comparable hardware — e.g. if locality lookups fall back to
per-heartbeat cache polling or the event queue loses its packed keys.
"""

import time

from repro.experiments.swim_runs import clear_cache, run_swim
from repro.workloads.serve import ServeConfig, run_serve

#: Generous wall-clock budget (seconds) for one 200-job Ignem SWIM run.
SMOKE_CEILING_SECONDS = 1.5

#: Budget for the 1200-request heat-policy serve run (~0.09s on a 2026
#: dev box; see ``BENCH_serve.json``).  The heat path adds a read
#: listener on every NameNode read and a migrator tick loop — this
#: ceiling fails CI if either becomes a per-event hot spot.
SERVE_CEILING_SECONDS = 1.0


def test_swim_200_jobs_within_wall_clock_budget():
    best = float("inf")
    # Best of two: the first run also pays one-time import/JIT-warmup
    # costs that have nothing to do with simulator throughput.
    for _ in range(2):
        clear_cache()
        start = time.perf_counter()
        run_swim("ignem", num_jobs=200)
        best = min(best, time.perf_counter() - start)
    clear_cache()
    assert best < SMOKE_CEILING_SECONDS, (
        f"200-job SWIM run took {best:.2f}s (budget {SMOKE_CEILING_SECONDS}s); "
        "see benchmarks/perf/bench_swim.py to measure properly"
    )


def test_serve_1200_requests_within_wall_clock_budget():
    config = ServeConfig(policy="heat", seed=0)
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        run_serve(config)
        best = min(best, time.perf_counter() - start)
    assert best < SERVE_CEILING_SECONDS, (
        f"1200-request serve run took {best:.2f}s (budget "
        f"{SERVE_CEILING_SECONDS}s); see benchmarks/perf/bench_serve.py "
        "to measure properly"
    )
