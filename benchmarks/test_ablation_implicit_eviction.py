"""Ablation III-A4/III-B2: implicit vs explicit-only eviction.

Implicit eviction (drop a job's reference the moment it reads the block)
is the paper's memory-footprint optimization: data leaves memory as soon
as it is consumed instead of lingering until the job's completion-time
evict call.
"""

import pytest

from repro.experiments import clear_cache
from repro.experiments.swim_runs import SWIM_ENGINE
from repro.cluster import build_paper_testbed
from repro.workloads import swim

from conftest import run_once


def _run(implicit: bool):
    cluster = build_paper_testbed(seed=0, ignem=True, engine_config=SWIM_ENGINE)
    jobs = swim.SwimGenerator(seed=0).generate(num_jobs=120)
    swim.materialize(cluster, jobs)
    specs, arrivals = swim.to_specs(jobs)
    done = cluster.engine.run_workload(specs, arrivals, implicit_eviction=implicit)
    cluster.run(until=done)

    def mean_nonzero(slave):
        total_time = total_area = 0.0
        timeline = slave.usage_timeline
        for (t0, v0), (t1, _) in zip(timeline, timeline[1:]):
            if v0 > 0:
                total_time += t1 - t0
                total_area += v0 * (t1 - t0)
        return total_area / total_time if total_time else 0.0

    footprints = [mean_nonzero(s) for s in cluster.ignem_slaves.values()]
    implicit_evictions = sum(
        1 for e in cluster.collector.evictions if e.reason == "implicit"
    )
    return {
        "mean_job": cluster.collector.mean_job_duration(),
        "mean_footprint": sum(footprints) / len(footprints),
        "implicit_evictions": implicit_evictions,
    }


def test_ablation_implicit_eviction(benchmark, record_result):
    def study():
        return {"implicit": _run(True), "explicit-only": _run(False)}

    results = run_once(benchmark, study)

    lines = ["Ablation — implicit vs explicit-only eviction (SWIM, 120 jobs)"]
    for name, stats in results.items():
        lines.append(
            f"{name:<14} mean_job={stats['mean_job']:6.2f}s "
            f"mean-footprint={stats['mean_footprint'] / 2**20:7.0f}MB "
            f"implicit-evictions={stats['implicit_evictions']}"
        )
    record_result("ablation_implicit_eviction", "\n".join(lines))

    # Implicit mode actually fires...
    assert results["implicit"]["implicit_evictions"] > 0
    assert results["explicit-only"]["implicit_evictions"] == 0
    # ...and shrinks the resident footprint without hurting performance.
    assert (
        results["implicit"]["mean_footprint"]
        < results["explicit-only"]["mean_footprint"]
    )
    assert (
        results["implicit"]["mean_job"]
        <= results["explicit-only"]["mean_job"] * 1.05
    )
