"""Extension (paper Section IV-E): benefit-aware migration prioritization.

The paper suggests inferring the per-job speed-up curve and prioritizing
jobs that benefit more.  This bench compares the three policies on the
SWIM workload.
"""

import pytest

from repro.core import IgnemConfig
from repro.experiments import clear_cache, run_swim

from conftest import run_once


def _run(policy: str):
    clear_cache()
    run = run_swim(
        "ignem", seed=0, num_jobs=120, ignem_config=IgnemConfig(policy=policy)
    )
    return run.collector.mean_job_duration()


def test_extension_benefit_aware_policy(benchmark, record_result):
    def study():
        baseline = run_swim("hdfs", seed=0, num_jobs=120).collector.mean_job_duration()
        results = {
            policy: _run(policy)
            for policy in ("fifo", "smallest-job-first", "benefit-aware")
        }
        return baseline, results

    baseline, results = run_once(benchmark, study)
    clear_cache()

    lines = ["Extension IV-E — migration priority policies (SWIM, 120 jobs)"]
    lines.append(f"{'HDFS baseline':<20} {baseline:6.2f}s")
    for policy, duration in results.items():
        lines.append(
            f"{policy:<20} {duration:6.2f}s "
            f"({(baseline - duration) / baseline:+.1%} vs HDFS)"
        )
    record_result("extension_benefit_aware", "\n".join(lines))

    # Every Ignem policy beats plain HDFS.
    for duration in results.values():
        assert duration < baseline
    # The informed policies are no worse than naive FIFO.
    assert results["smallest-job-first"] <= results["fifo"] * 1.02
    assert results["benefit-aware"] <= results["fifo"] * 1.02
