"""Fig 9: Hive/TPC-DS query durations and input sizes.

Paper: Ignem accelerates queries by up to 34% (query 3) and 20% on
average; gains are less pronounced for the largest-input queries (82,
25, 29) because only a shrinking fraction of their input fits in the
lead-time.  Also reproduces the Section II-A statistic: map tasks are
~97% of total task runtime for these queries.
"""

import pytest

from repro.experiments import fig9_hive_study
from repro.storage import GB

from conftest import run_once


def test_fig9_hive_queries(benchmark, record_result):
    study = run_once(benchmark, fig9_hive_study, seed=0)
    record_result("fig9_hive_queries", study.format())

    ordered = study.by_input_size()

    # Every query gains from Ignem.
    for query in ordered:
        assert query.speedup("ignem") > 0, query.query_id

    # Headline factors: best query >= ~25%, mean around 20%.
    assert study.best_query().speedup("ignem") >= 0.2, "paper: 34% (q3)"
    assert 0.10 <= study.mean_ignem_speedup() <= 0.40, "paper: ~20%"

    # The largest-input queries gain less than the small ones (the Fig 9
    # trend the paper highlights for queries 82/25/29).
    small_mean = sum(q.speedup("ignem") for q in ordered[:3]) / 3
    large_mean = sum(q.speedup("ignem") for q in ordered[-3:]) / 3
    assert large_mean < small_mean

    # Query input sizes in Fig 9b span small to large, with q3 small and
    # q29 the largest.
    assert ordered[0].query_id == "q3"
    assert ordered[-1].query_id == "q29"
    assert ordered[-1].input_bytes > 5 * ordered[0].input_bytes

    # Section II-A: map tasks dominate total task runtime.
    assert study.map_runtime_fraction >= 0.85, "paper: ~97%"
