"""Ablation III-A1: one-block-at-a-time vs concurrent migration.

The paper migrates one block at a time per slave "to avoid disk bandwidth
degradation due to concurrent reads".  This bench runs the sort workload
with 1, 2, and 4 concurrent migration streams per slave: with the HDD's
concurrency penalty, extra streams make migration (and the foreground
mappers) collectively slower.
"""

import pytest

from repro.core import IgnemConfig
from repro.experiments import run_sort_once
from repro.storage import GB

from conftest import run_once


def test_ablation_migration_concurrency(benchmark, record_result):
    def study():
        durations = {}
        for concurrency in (1, 2, 4):
            durations[concurrency] = run_sort_once(
                "ignem",
                seed=0,
                input_bytes=20 * GB,
                ignem_config=IgnemConfig(migration_concurrency=concurrency),
            )
        return durations

    durations = run_once(benchmark, study)

    lines = ["Ablation — concurrent migrations per slave (20GB sort)"]
    for concurrency, duration in sorted(durations.items()):
        lines.append(f"concurrency={concurrency}: {duration:7.1f}s")
    record_result("ablation_migration_concurrency", "\n".join(lines))

    # One-at-a-time is never worse than heavy concurrency, and the
    # differences stay bounded (migration is a small share of disk time).
    assert durations[1] <= durations[4] * 1.02
    assert max(durations.values()) / min(durations.values()) < 1.5
