#!/usr/bin/env python3
"""Chaos day: a production-shaped cluster surviving everything at once.

Runs a mixed workload (recurring log jobs + one big sort + a Hive query)
on an Ignem cluster with every resilience feature enabled — HA master
pair, re-replication, task retry, speculative execution — while a chaos
process kills a server and the primary Ignem master mid-flight.

The point: with proactive migration AND the substrate's fault tolerance,
everything completes, data stays at full replication, and no migrated
memory leaks.

Run:  python examples/chaos_day.py
"""

from repro import IgnemConfig, JobSpec, build_paper_testbed
from repro.hive import HiveSession, get_query, ignem_migration_hook
from repro.mapreduce import EngineConfig
from repro.storage import GB, MB
from repro.workloads.sort import SORT_INPUT_PATH, make_sort_spec


def main() -> None:
    engine = EngineConfig(speculative_execution=True)
    cluster = build_paper_testbed(seed=99, engine_config=engine)
    ha = cluster.enable_ignem(IgnemConfig(), ha=True)
    cluster.enable_rereplication()

    # Datasets: recurring logs, the 20GB sort input, one warehouse table.
    for index in range(4):
        cluster.client.create_file(f"/logs/part-{index}", 1 * GB)
    cluster.client.create_file(SORT_INPUT_PATH, 20 * GB)
    session = HiveSession(cluster, hook=ignem_migration_hook)
    query = get_query("q3")
    session.create_tables(query.tables)

    jobs = []

    def workload(env):
        # Recurring log analyses arrive every 30s.
        for index in range(4):
            jobs.append(
                cluster.engine.submit_job(
                    JobSpec(
                        f"logscan-{index}",
                        (f"/logs/part-{index}",),
                        shuffle_bytes=64 * MB,
                        num_reduces=2,
                    )
                )
            )
            yield env.timeout(30)
        # The big sort lands in the middle of everything.
        jobs.append(cluster.engine.submit_job(make_sort_spec(20 * GB)))
        # And an analyst fires a Hive query.
        yield session.run_query(query)

    def chaos(env):
        # Strike in the middle of the sort's map waves so running
        # containers actually die and must be retried elsewhere.
        yield env.timeout(135)
        print(f"[{env.now:6.1f}s] CHAOS: killing server node5 mid-sort")
        cluster.fail_node("node5")
        yield env.timeout(15)
        print(f"[{env.now:6.1f}s] CHAOS: killing the primary Ignem master")
        ha.fail_primary()
        print(f"[{env.now:6.1f}s]        standby took over instantly")

    cluster.env.process(workload(cluster.env), name="workload")
    cluster.env.process(chaos(cluster.env), name="chaos")
    cluster.run()

    print(f"\n[{cluster.env.now:6.1f}s] everything drained. Outcomes:")
    for job in jobs:
        print(f"  {job.spec.name:<12} {job.duration:7.1f}s "
              f"(maps={job.num_maps}, speculative={job.speculative_attempts})")
    print(f"  {query.query_id:<12} {session.results[0].duration:7.1f}s (Hive)")

    retried = cluster.rm.tasks_retried
    copies = cluster.replication_monitor.copies_completed
    ram_reads = sum(1 for r in cluster.collector.block_reads if r.source == "ram")
    resident = sum(s.migrated_bytes for s in cluster.ignem_slaves.values())
    print(f"\ntasks retried after the node kill: {retried}")
    print(f"blocks re-replicated to restore fault tolerance: {copies}")
    print(f"block reads served from migrated memory: {ram_reads}")
    print(f"Ignem master failovers: {ha.failovers}")
    print(f"migrated bytes still resident (leak check): {resident:.0f}")

    # Verify replication is fully restored.
    degraded = cluster.replication_monitor.under_replicated_blocks()
    print(f"under-replicated blocks remaining: {len(degraded)}")


if __name__ == "__main__":
    main()
