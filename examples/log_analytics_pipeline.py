#!/usr/bin/env python3
"""A recurring log-analytics pipeline over singly-read cold data.

This is the workload class the paper's introduction motivates: recurring
jobs that each process *new* data (logs, click-streams) exactly once.
The data lands on disk, cools off, and is cold by the time the job runs —
so caching schemes (which keep *hot* data) never help, while Ignem's
proactive migration does.

The script simulates an hour of a pipeline where a new log partition is
ingested every few minutes and an analysis job is submitted for each
partition shortly afterwards, then reports per-job speedups and Ignem's
memory behaviour (reference-list eviction keeps the footprint tiny).

Run:  python examples/log_analytics_pipeline.py
"""

from repro import JobSpec, build_paper_testbed
from repro.storage import GB, MB

INGEST_INTERVAL = 180.0  # a new partition every 3 minutes
ANALYSIS_DELAY = 60.0  # the job is submitted 1 minute after ingest
NUM_PARTITIONS = 20
PARTITION_BYTES = 1.5 * GB


def build_pipeline(cluster):
    """Ingest partitions and submit one analysis job per partition."""
    jobs = []

    def driver():
        for index in range(NUM_PARTITIONS):
            path = f"/logs/part-{index:04d}"
            # Ingest: the partition is written cold to disk.
            cluster.client.create_file(path, PARTITION_BYTES)
            yield cluster.env.timeout(ANALYSIS_DELAY)
            job = cluster.engine.submit_job(
                JobSpec(
                    name=f"sessionize-{index:04d}",
                    input_paths=(path,),
                    shuffle_bytes=96 * MB,
                    output_bytes=32 * MB,
                    num_reduces=2,
                    map_cpu_factor=4.0,  # parsing + sessionization logic
                )
            )
            jobs.append(job)
            yield cluster.env.timeout(INGEST_INTERVAL - ANALYSIS_DELAY)

    cluster.env.process(driver(), name="pipeline-driver")
    return jobs


def run(mode: str):
    cluster = build_paper_testbed(seed=7, ignem=(mode == "ignem"))
    jobs = build_pipeline(cluster)
    cluster.run()
    mean_duration = sum(j.duration for j in jobs) / len(jobs)
    return cluster, jobs, mean_duration


def main() -> None:
    print("Recurring log-analytics pipeline (singly-read cold data)\n")

    _, _, hdfs_mean = run("hdfs")
    cluster, jobs, ignem_mean = run("ignem")

    print(f"mean analysis-job duration on HDFS:  {hdfs_mean:6.2f}s")
    print(f"mean analysis-job duration on Ignem: {ignem_mean:6.2f}s")
    print(f"speedup: {(hdfs_mean - ignem_mean) / hdfs_mean:.0%}\n")

    collector = cluster.collector
    ram_reads = sum(1 for r in collector.block_reads if r.source == "ram")
    print(
        f"{ram_reads}/{len(collector.block_reads)} block reads served "
        f"from RAM via migration"
    )

    # Every partition is read exactly once, so implicit eviction drops it
    # from memory the moment its mapper consumed it — the migration
    # buffer stays almost empty between jobs.
    peak = max(s.migrated_bytes for s in collector.memory_samples)
    final = {s.name: s.migrated_bytes for s in cluster.ignem_slaves.values()}
    print(f"peak migrated bytes on any server: {peak / MB:.0f}MB")
    print(f"migrated bytes after the pipeline drained: {sum(final.values()):.0f}")
    evictions = {}
    for record in collector.evictions:
        evictions[record.reason] = evictions.get(record.reason, 0) + 1
    print(f"evictions by reason: {evictions}")


if __name__ == "__main__":
    main()
