#!/usr/bin/env python3
"""Replay the SWIM Facebook-derived trace and print the paper's headline
numbers (Tables I and II, Figure 6).

Run:  python examples/swim_replay.py [num_jobs]
"""

import sys

from repro.experiments import (
    fig6_block_read_cdf,
    table1_job_duration,
    table2_task_duration,
)


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print(f"Replaying the first {num_jobs} SWIM jobs on 8 simulated servers")
    print("(three runs: HDFS, Ignem, HDFS-Inputs-in-RAM)\n")

    table1 = table1_job_duration(seed=0, num_jobs=num_jobs)
    print(table1.format())
    print(
        f"Ignem realizes {table1.fraction_of_upper_bound():.0%} of the "
        f"upper bound (paper: ~60%)\n"
    )

    table2 = table2_task_duration(seed=0, num_jobs=num_jobs)
    print(table2.format())
    print()

    fig6 = fig6_block_read_cdf(seed=0, num_jobs=num_jobs)
    print(
        f"block reads: {fig6.mean_reduction:.0%} mean reduction "
        f"(paper ~40%); {fig6.migrated_fraction:.0%} of blocks read from "
        f"memory (paper ~60%)"
    )


if __name__ == "__main__":
    main()
