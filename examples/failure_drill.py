#!/usr/bin/env python3
"""Failure drill: Ignem's resilience story (paper Section III-A5).

Kills the Ignem master and a slave mid-workload and shows that the
system degrades gracefully — migrations already in memory are purged to
stay consistent, new requests keep working after restart, and no memory
leaks survive.

Run:  python examples/failure_drill.py
"""

from repro import JobSpec, build_paper_testbed
from repro.storage import GB, MB


def main() -> None:
    cluster = build_paper_testbed(seed=3, ignem=True)
    master = cluster.ignem_master

    for index in range(6):
        cluster.client.create_file(f"/data/f{index}", 512 * MB)

    def drill():
        env = cluster.env

        # Phase 1: healthy migration.
        cluster.client.migrate(["/data/f0", "/data/f1"], "job-a")
        yield env.timeout(20)
        resident = sum(s.migrated_bytes for s in master.slaves())
        print(f"[{env.now:6.1f}s] healthy: {resident / MB:.0f}MB migrated")

        # Phase 2: master dies; slaves purge on the new master's arrival.
        master.fail()
        print(f"[{env.now:6.1f}s] master FAILED — new requests are lost")
        cluster.client.migrate(["/data/f2"], "job-b")  # silently dropped
        yield env.timeout(5)
        master.restart()
        resident = sum(s.migrated_bytes for s in master.slaves())
        print(
            f"[{env.now:6.1f}s] master restarted; slaves purged to match "
            f"its empty state ({resident / MB:.0f}MB resident)"
        )

        # Phase 3: the replacement master serves new work.
        cluster.client.migrate(["/data/f3"], "job-c")
        yield env.timeout(20)
        resident = sum(s.migrated_bytes for s in master.slaves())
        print(f"[{env.now:6.1f}s] new master healthy: {resident / MB:.0f}MB migrated")

        # Phase 4: a slave process dies — the OS reclaims its pinned
        # pages; after restart it accepts fresh commands.
        victim = next(s for s in master.slaves() if s.migrated_bytes > 0)
        victim.fail()
        print(
            f"[{env.now:6.1f}s] slave {victim.name} FAILED; its memory was "
            f"reclaimed (leak-free by construction)"
        )
        victim.datanode.restart()
        victim.restart()
        cluster.client.migrate(["/data/f4"], "job-d")
        yield env.timeout(20)
        new_bytes = sum(
            m.nbytes
            for m in cluster.collector.completed_migrations()
            if m.job_id == "job-d"
        )
        print(
            f"[{env.now:6.1f}s] slave {victim.name} restarted; the cluster "
            f"migrated {new_bytes / MB:.0f}MB for the next job"
        )

        # Phase 5: a crashed job never sends its evict — the liveness
        # sweep reclaims its references under memory pressure, so even
        # abandoned migrations cannot leak.
        leaked = sum(s.reference_count() for s in master.slaves())
        print(f"[{env.now:6.1f}s] dangling references before cleanup: {leaked}")
        for slave in master.slaves():
            slave._maybe_cleanup_dead_jobs()  # forced sweep for the demo

    cluster.env.process(drill(), name="failure-drill")
    cluster.run()

    # Jobs were never registered with the RM in this drill, so a real
    # pressure-triggered sweep would reclaim everything; the explicit
    # evict path does the same:
    for job in ("job-a", "job-c", "job-d"):
        cluster.client.evict([f"/data/f{i}" for i in range(6)], job)
    cluster.run()
    resident = sum(s.migrated_bytes for s in cluster.ignem_master.slaves())
    print(f"[final ] resident migrated bytes after cleanup: {resident:.0f}")


if __name__ == "__main__":
    main()
