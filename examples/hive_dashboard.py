#!/usr/bin/env python3
"""An analyst dashboard issuing TPC-DS-style Hive queries.

Reproduces the paper's Hive integration (Section IV-G): a one-off hook in
the framework migrates each compiled query's input tables, and every
query on the warehouse is accelerated transparently — no per-query code.

Run:  python examples/hive_dashboard.py
"""

from repro import build_paper_testbed
from repro.hive import (
    TPCDS_QUERIES,
    HiveSession,
    ignem_migration_hook,
    query_input_bytes,
)
from repro.storage import GB


def run_dashboard(use_ignem: bool):
    """Run the full query set sequentially on one warehouse."""
    cluster = build_paper_testbed(seed=11, ignem=use_ignem)
    session = HiveSession(
        cluster, hook=ignem_migration_hook if use_ignem else None
    )
    session.create_tables()  # materialize the whole warehouse

    durations = {}

    def analyst():
        for query in TPCDS_QUERIES:
            done = session.run_query(query)
            result = yield done
            durations[query.query_id] = result.duration

    cluster.env.process(analyst(), name="analyst")
    cluster.run()
    return durations


def main() -> None:
    print("Hive dashboard — TPC-DS query set with and without Ignem\n")
    hdfs = run_dashboard(use_ignem=False)
    ignem = run_dashboard(use_ignem=True)

    print(f"{'query':<6} {'input':>8} {'hdfs':>8} {'ignem':>8} {'speedup':>8}")
    queries = sorted(TPCDS_QUERIES, key=query_input_bytes)
    for query in queries:
        qid = query.query_id
        speedup = (hdfs[qid] - ignem[qid]) / hdfs[qid]
        print(
            f"{qid:<6} {query_input_bytes(query) / GB:>7.1f}G "
            f"{hdfs[qid]:>7.1f}s {ignem[qid]:>7.1f}s {speedup:>8.1%}"
        )

    total_hdfs = sum(hdfs.values())
    total_ignem = sum(ignem.values())
    print(
        f"\nwhole dashboard: {total_hdfs:.0f}s -> {total_ignem:.0f}s "
        f"({(total_hdfs - total_ignem) / total_hdfs:.0%} faster), via one "
        f"framework hook and zero per-query changes"
    )


if __name__ == "__main__":
    main()
