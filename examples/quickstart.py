#!/usr/bin/env python3
"""Quickstart: one job, three file-system configurations.

Builds the paper's 8-server testbed, stores a cold 2GB log file in the
DFS, and runs the same scan job under plain HDFS, Ignem, and the
HDFS-Inputs-in-RAM upper bound — the comparison at the heart of the
paper's evaluation.

Run:  python examples/quickstart.py
"""

from repro import JobSpec, build_paper_testbed
from repro.storage import GB, MB


def run_once(mode: str) -> float:
    """Run the scan job under one configuration; returns its duration."""
    cluster = build_paper_testbed(seed=42, ignem=(mode == "ignem"))

    # A freshly ingested, never-before-read log file: the cold data the
    # usual keep-hot-data-in-memory schemes cannot help with.
    cluster.client.create_file("/logs/clickstream-2026-07-04", 2 * GB)

    if mode == "inputs-in-ram":
        cluster.pin_all_inputs()  # the vmtouch upper bound

    job = cluster.engine.submit_job(
        JobSpec(
            name="daily-clickstream-scan",
            input_paths=("/logs/clickstream-2026-07-04",),
            shuffle_bytes=64 * MB,
            output_bytes=16 * MB,
            num_reduces=2,
        )
    )
    cluster.run()

    migrated = len(cluster.collector.completed_migrations())
    ram_reads = sum(1 for r in cluster.collector.block_reads if r.source == "ram")
    print(
        f"{mode:>14}: job took {job.duration:6.2f}s "
        f"(maps: {job.num_maps}, blocks read from RAM: {ram_reads}, "
        f"blocks migrated: {migrated})"
    )
    return job.duration


def main() -> None:
    print("Ignem quickstart — the same job on three configurations\n")
    hdfs = run_once("hdfs")
    ignem = run_once("ignem")
    ram = run_once("inputs-in-ram")

    print(
        f"\nIgnem speedup over HDFS: {(hdfs - ignem) / hdfs:.0%}; "
        f"upper bound: {(hdfs - ram) / hdfs:.0%}"
    )
    print(
        "Ignem migrated the cold input into memory during the job's "
        "lead-time,\nso its mappers read from RAM like the pinned "
        "baseline — without pinning\nanything in advance."
    )


if __name__ == "__main__":
    main()
